//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online detection engine: race-check real std::thread programs with
/// any existing Tool, no trace file required.
///
/// This is the third producer column of the architecture diagram and the
/// first one fed by real concurrency — the deployment model of the paper
/// (RoadRunner instrumenting a live JVM), transplanted to native C++.
/// An Engine session looks like:
///
/// \code
///   FastTrack Detector;
///   ft::runtime::OnlineOptions Options;
///   Options.CapturePath = "run.trc";        // optional flight recorder
///   {
///     ft::runtime::Engine Engine(Detector, Options);
///     // ... run code built from ft::runtime::Thread / Mutex / Shared<T>
///     ft::runtime::OnlineReport Report = Engine.finish();
///   }
///   // Detector.warnings() holds the races, reported as they happened.
/// \endcode
///
/// How the pieces fit (each one a paper-adjacent engineering idea):
///
///  - **Tickets.** Every instrumentation point draws a global sequence
///    number (one relaxed fetch_add) at a moment when the real operation
///    has made it safe: an acquire is ticketed while the lock is held, a
///    release before it is given up, a fork before the child starts, a
///    join after the child is reaped. Ticket order is therefore a legal
///    linearization of the execution — the total order the framework's
///    analyses are defined over.
///  - **Rings.** Each thread publishes its ticketed events into a private
///    bounded SPSC ring (EventRing.h). Emit is wait-free until the ring
///    fills; a full ring parks the thread (bounded-queue backpressure),
///    so the application can never race unboundedly ahead of the
///    detector.
///  - **The sequencer.** One drain thread merges the rings by ticket
///    number into the totally-ordered stream and feeds the framework's
///    OnlineDriver, which applies the serial replay loop's semantics
///    (re-entrant lock filtering, raw op indices) to the unmodified Tool.
///    Detection runs entirely off the application's critical path.
///  - **Shards** (OnlineOptions::Shards > 1). The sequencer splits into
///    a *router* (merge + admission + capture + routing) and N shard
///    workers, each draining the accesses of the variables it owns into
///    a shard-local tool clone; admitted sync events are broadcast to
///    every shard as the cross-shard spine, paced by a ticket-watermark
///    barrier (a shard may not dispatch sync ordinal k until every shard
///    has finished ordinal k-1). Warnings and captures stay identical to
///    the single-sequencer engine. The full protocol, including why the
///    barrier is pacing rather than a precision requirement, is worked
///    through in docs/RUNTIME.md.
///  - **The flight recorder.** The merged stream is optionally captured
///    as a Trace and written as a .trc file on finish() — or, with
///    CaptureSegmentBytes set, streamed as sealed, fsynced segments
///    (trace/SegmentedCapture.h) so a crash loses at most one segment.
///
/// **Resilience.** A production detector must survive the host program
/// misbehaving. Three mechanisms keep detection alive where PR 3 simply
/// halted:
///
///  - **The degradation ladder** (OnlineDriver.h): sustained ring
///    pressure, a shadow-memory budget breach, or an over-capacity
///    variable steps the driver Full → coarse granularity → access
///    sampling → sync-only instead of halting. Sync events are never
///    degraded, so the happens-before spine stays exact; every
///    transition is a Warning diagnostic in the report. Pin it off with
///    OnlineOptions::Degrade.Enabled = false.
///  - **The supervisor** (a watchdog thread, modeled on the parallel
///    replay stall watchdog): when the sequencer's merge watermark stops
///    advancing past the deadline, it unparks blocked producers into
///    drop-and-count mode, abandons and restarts the sequencer, and from
///    the second stall on also downgrades a ladder rung. Application
///    threads therefore never block on a wedged detector for longer than
///    the deadline (sync events wait for the restart; access events are
///    shed and counted). Only an unrecoverable sequencer — MaxRestarts
///    exhausted — halts detection, never the application.
///  - **Fault injection** (FaultPlan.h): every transition above is
///    drivable deterministically, keyed on ticket numbers.
///
/// Threads created through ft::runtime::Thread get fork/join edges; any
/// other thread that touches instrumented state is auto-registered on
/// first emit (its events are analyzed, conservatively unordered — but a
/// capture containing such a thread will fail TraceValidator's
/// fork-before-first-op rule, so instrument thread creation too).
///
/// **Thread lifecycle.** Dense thread ids are *slots*, not threads: once
/// a thread is joined and the sequencer has drained its ring, its slot
/// (channel + vector-clock column) is retired and the next forkThread()
/// reincarnates it under the same id (OnlineOptions::RecycleThreadSlots).
/// Memory and VC width therefore track the *max-live* thread count, not
/// total-ever — a thread-pool churning 10k workers through 8 slots costs
/// 8 columns. The clock algebra needs no special case: the dead thread's
/// final clock survives in its slot's VC entry, join already bumped the
/// slot's own clock strictly past it, and fork joins the parent's clock
/// on top — so the fork edge doubles as an implicit dead-thread→successor
/// edge and every stale epoch `c@t` still compares correctly (proved
/// against the HB oracle in the FastTrack suite; the full protocol is in
/// docs/RUNTIME.md). When max-live genuinely exceeds MaxThreads, fork
/// degrades instead of dying: tryForkThread() returns a structured
/// ResourceExhausted Status, the child runs *untracked* (its events are
/// dropped and counted, never silently), a supervisor diagnostic is
/// attached, and one ladder downgrade is requested so the detector sheds
/// load rather than the application crashing.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_RUNTIME_ENGINE_H
#define FASTTRACK_RUNTIME_ENGINE_H

#include "clock/ClockStats.h"
#include "framework/OnlineDriver.h"
#include "runtime/EventRing.h"
#include "runtime/Interner.h"
#include "support/Status.h"
#include "support/Stopwatch.h"
#include "trace/SegmentedCapture.h"
#include "trace/Trace.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ft::runtime {

struct FaultPlan;

/// Knobs of the sequencer watchdog (tentpole piece 2). The supervisor is
/// a 5 ms-tick thread; its cost is noise, but it is the only mechanism
/// that bounds how long an application thread can block on a wedged
/// detector, so it defaults on.
struct SupervisorOptions {
  /// Master switch. Off restores PR 3 behavior: a wedged sequencer parks
  /// producers forever.
  bool Enabled = true;

  /// Sampling cadence of the watchdog thread.
  unsigned TickMs = 5;

  /// A sequencer whose merge watermark has not advanced for this long
  /// (while tickets are outstanding) is declared stalled: blocked
  /// producers are unparked into drop-and-count mode and the sequencer
  /// is restarted (the second stall also downgrades a ladder rung).
  unsigned StallDeadlineMs = 250;

  /// Emit-side bound: an *access* event parked on a full ring this long
  /// is dropped and counted rather than blocking the application
  /// further. Sync events are never dropped this way (the HB spine must
  /// stay exact); they wait for the supervisor to recover the sequencer.
  unsigned MaxParkMs = 200;

  /// Consecutive watchdog ticks observing park-deadline drops before the
  /// supervisor requests a ladder rung downgrade (sustained pressure).
  unsigned PressureTicksToDegrade = 2;

  /// Sequencer restarts before the supervisor gives up and halts
  /// detection (the true last resort).
  unsigned MaxRestarts = 4;
};

/// Options for one online session.
struct OnlineOptions {
  /// Shadow-state capacity announced to the tool (tools pre-size flat
  /// arrays and index them unchecked, so the engine enforces the bounds).
  /// An over-capacity *variable* coarsens a ladder rung (when enabled);
  /// other breaches halt detection — never the application. The default
  /// FastTrack epoch layout caps threads at 256 anyway.
  unsigned MaxThreads = 64;
  unsigned MaxVars = 1u << 16;
  unsigned MaxLocks = 1024;
  unsigned MaxVolatiles = 1024;

  /// Per-thread event-ring capacity (rounded up to a power of two). The
  /// backpressure bound: an application thread more than this many events
  /// ahead of the sequencer parks until it drains.
  size_t RingCapacity = 1024;

  /// How many consecutive events the sequencer copies out of a ring per
  /// visit before dispatching them (EventRing::popRunInto). Larger
  /// batches amortize the ring's atomic hand-off and release backpressure
  /// space in bulk; events are dispatched in ticket order either way.
  ///
  /// **Watermark invariant** (pinned by OnlineShardingTest): the merge
  /// watermark NextSeq is published once per *batch*, after every event
  /// of the batch has been admitted, captured, and — with Shards > 1 —
  /// routed. A sequencer the supervisor restarts therefore resumes
  /// exactly at its predecessor's last per-batch watermark, never
  /// mid-batch, so no event is lost or delivered twice whatever
  /// SequencerBatch is; successive published watermarks are strictly
  /// increasing (asserted in the loop). With Shards > 1 each shard
  /// worker keeps the same discipline over its own routed stream: its
  /// in-flight batch and position persist across a restart, so the
  /// successor resumes at the exact wedge point (the popped events are
  /// gone from the ring and exist nowhere else).
  size_t SequencerBatch = 256;

  /// Per-shard sequencer threads — the PR 1 variable partitioning
  /// brought online. 0 or 1 keeps the classic single sequencer,
  /// bit-compatible with previous releases. With N > 1 the old sequencer
  /// becomes a *router*: it still merges tickets and runs admission
  /// (degradation ladder, capacity checks, lock filtering, raw-index
  /// assignment, capture), then routes each admitted access to the shard
  /// owning its variable — shardOf(x) = (x / ShardBlockVars) % N — and
  /// every admitted sync event to all shards (the cross-shard spine).
  /// Each shard drains its own ring into a shard-local clone of the tool
  /// (ShardableTool::cloneForShard), so warnings and captures are
  /// byte-identical to the single-sequencer engine (asserted by the
  /// determinism suite). A tool that does not implement ShardableTool
  /// falls back to 1 with a Note diagnostic. Clamped to 64.
  unsigned Shards = 1;

  /// Variables per routing block. Block-cyclic routing keeps neighboring
  /// variable ids (fields of one object, elements of one array) in one
  /// shard's shadow arrays — the cache/TLB locality the shard split
  /// exists to create; pure modulo would interleave every shard through
  /// every cache line. Must not change mid-session. 0 is treated as 1.
  uint32_t ShardBlockVars = 64;

  /// Capacity of each router→shard ring (rounded up to a power of two).
  /// 0 derives max(RingCapacity, 4 × SequencerBatch) so a full admission
  /// batch can always be routed without the router wedging on its own
  /// batch size.
  size_t ShardRingCapacity = 0;

  /// Reuse the slot (dense id + channel + VC column) of a fully joined
  /// thread for the next fork, once the sequencer has drained the dead
  /// thread's ring. On: shadow memory and VC width track max-live
  /// threads, so unbounded churn fits in a bounded slot table. Off
  /// restores PR 3 behavior (every fork consumes a fresh id forever).
  bool RecycleThreadSlots = true;

  /// When every slot is live or still draining, forkThread() waits up to
  /// this long for a retiring slot's ring to empty before declaring the
  /// table exhausted. Generous by default: the wait only triggers at the
  /// capacity edge, and a supervisor-recovered sequencer stall (the one
  /// legitimate cause of a slow drain) clears within StallDeadlineMs.
  unsigned SlotDrainWaitMs = 1000;

  /// Strip redundant re-entrant lock events, as replay() does.
  bool FilterReentrantLocks = true;

  /// Keep the merged stream as a Trace in the report (the flight
  /// recorder's in-memory form; needed for in-process re-checks).
  bool KeepCapture = true;

  /// When nonempty, write the merged stream to this .trc file on
  /// finish() — the on-disk flight recorder.
  std::string CapturePath;

  /// When nonzero (and CapturePath is set), the flight recorder writes
  /// crash-safe segments of roughly this many bytes instead of one file
  /// at finish(): `<CapturePath minus .trc>.segNNNNNN.trc`, each sealed
  /// with a checksummed footer and fsynced, recoverable after SIGKILL
  /// with recoverSegmentedCapture(). 0 keeps the single-file recorder.
  size_t CaptureSegmentBytes = 0;

  /// Run TraceValidator over the capture on finish() and attach any
  /// violations to the report's diagnostics.
  bool ValidateCapture = true;

  /// Overload-degradation ladder shared with the driver (see
  /// OnlineDriver.h). Degrade.Enabled = false pins every rung off.
  DegradePolicy Degrade;

  /// Sequencer watchdog knobs.
  SupervisorOptions Supervise;

  /// Deterministic fault injection for tests (not owned; may be null).
  const FaultPlan *Faults = nullptr;

  /// Online warning sink: invoked from the sequencer thread the moment a
  /// race is detected, with the full RaceWarning (thread/op context).
  std::function<void(const RaceWarning &)> OnWarning;
};

/// Per-thread drop accounting (satellite: no silent event loss).
struct ThreadDropStats {
  ThreadId Thread = 0;
  uint64_t PostHalt = 0; ///< Events dropped because detection had halted.
  uint64_t Overload = 0; ///< Accesses shed by park-deadline/drop mode.
  uint64_t Parks = 0;    ///< Backpressure park episodes.
};

/// What one online session measured and captured.
struct OnlineReport {
  double Seconds = 0;            ///< Wall-clock session time.
  uint64_t EventsCaptured = 0;   ///< Delivered (captured) stream length.
  uint64_t EventsDispatched = 0; ///< Events reaching the tool (post filter).
  size_t NumWarnings = 0;        ///< Tool warnings at finish.
  ClockStats Clocks;             ///< VC ops spent by online detection.
  bool Halted = false;           ///< Detection stopped (unrecoverable).
  std::vector<Diagnostic> Diags; ///< Halts, degradations, watchdog events.
  Trace Captured;                ///< The merged stream (when KeepCapture).

  // --- resilience telemetry ---
  unsigned DegradeRung = 0;      ///< Final ladder position (0 = Full).
  unsigned Degradations = 0;     ///< Ladder transitions taken.
  uint64_t AccessesShed = 0;     ///< Accesses dropped by sampling/SyncOnly.
  uint64_t DroppedPostHalt = 0;  ///< Events dropped after a halt (total).
  uint64_t DroppedOverload = 0;  ///< Accesses shed at emit (park deadline
                                 ///< or drop-and-count mode).
  uint64_t ParkEpisodes = 0;     ///< Total backpressure park episodes.
  uint64_t MaxBacklog = 0;       ///< Max observed tickets outstanding
                                 ///< (MaxQueueDepth-style pressure stat).
  unsigned SequencerRestarts = 0; ///< Watchdog recoveries (router/sequencer).
  unsigned CaptureSegments = 0;  ///< Segments sealed (segmented recorder).
  std::vector<ThreadDropStats> PerThreadDrops; ///< Nonzero rows only.

  // --- sharded-engine telemetry (OnlineOptions::Shards) ---
  unsigned Shards = 1;        ///< Shard sequencers actually used (1 =
                              ///< single-sequencer engine, including the
                              ///< non-ShardableTool fallback).
  unsigned ShardRestarts = 0; ///< Shard-worker watchdog recoveries,
                              ///< summed across shards.

  // --- thread-lifecycle telemetry (slot recycling) ---
  unsigned SlotsAllocated = 0; ///< Distinct slots ever created — the VC
                               ///< width the tool actually paid for. With
                               ///< recycling this is the peak *live*
                               ///< count, not the total thread count.
  unsigned PeakLiveSlots = 0;  ///< Max simultaneously live slots.
  uint64_t ThreadsRecycled = 0; ///< Forks served by reincarnating a
                                ///< retired slot.
  uint64_t ForksRejected = 0;  ///< Slot requests (forks and foreign-thread
                               ///< auto-registrations) refused for
                               ///< exhaustion; each such thread ran
                               ///< untracked.
  uint64_t UntrackedEvents = 0; ///< Events dropped (and counted here)
                                ///< because their thread had no slot.
  uint64_t EventsElided = 0;    ///< Accesses skipped by elision — through
                                ///< Unchecked<T> never counting, this is
                                ///< only downgraded Shared<T> accesses
                                ///< (Engine::noteElided()).

  // --- memory-governance telemetry (shadow/ShadowPolicy.h; summed
  // across shard clones in sharded mode) ---
  uint64_t ShadowBytesHighWater = 0; ///< Peak governed shadow footprint.
  uint64_t PagesCompressed = 0;  ///< Cold pages packed losslessly.
  uint64_t PagesSummarized = 0;  ///< Pages folded to one summary slot.
  uint64_t BudgetTrips = 0;      ///< High-watermark crossings.
};

/// One online detection session over one Tool. Construct it, run
/// instrumented code, call finish() after joining every runtime Thread.
/// At most one Engine is live at a time (the instrumentation shims find
/// it through Engine::current()).
class Engine {
public:
  explicit Engine(Tool &Checker, OnlineOptions Options = OnlineOptions());
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Drains all in-flight events, stops the supervisor and sequencer,
  /// calls the tool's end(), writes/validates the capture, and returns
  /// the measurements. All threads created through ft::runtime::Thread
  /// must be joined first. Callable once; the destructor calls it if the
  /// caller did not.
  OnlineReport finish();

  /// The live engine instrumentation attaches to, or nullptr when no
  /// session is active (shims become pass-throughs).
  static Engine *current();

  /// Monotone session stamp; instrumented objects cache (generation, id)
  /// pairs so ids never leak across sessions.
  uint64_t generation() const { return Gen; }

  /// True once detection halted (the application keeps running; events
  /// are dropped and counted). Safe from any thread.
  bool halted() const { return Halted.load(std::memory_order_acquire); }

  // --- instrumentation back end (called by the shims in Instrument.h) ---

  /// Dense id for \p Obj in \p Kind's space.
  uint32_t internId(EntityKind Kind, const void *Obj) {
    return Interner.intern(Kind, Obj);
  }

  /// Emits one event from the calling thread, drawing the next global
  /// ticket. Parks while the thread's ring is full (backpressure) — but
  /// never past the supervisor's bounds: a parked *access* is dropped and
  /// counted after MaxParkMs (or immediately in drop-and-count mode);
  /// sync events wait for the watchdog to recover the sequencer. Events
  /// after a halt are dropped and counted, never silently.
  void emit(OpKind Kind, uint32_t Target);

  /// Records one access a downgraded Shared<T> performed without
  /// emitting (the native analogue of Expr::ElideEvent): a single
  /// relaxed increment, aggregated into OnlineReport::EventsElided at
  /// finish(). Keeping the count lets a session verify how much
  /// instrumentation the elision annotations actually removed.
  void noteElided() { ElidedEvents.fetch_add(1, std::memory_order_relaxed); }

  /// Sentinel returned by forkThread() when the slot table is exhausted:
  /// the child has no dense id and must run untracked (bind with
  /// bindCurrentThreadUntracked(); its events are dropped and counted).
  static constexpr ThreadId NoThread = ~0u;

  /// Allocates a slot for a child thread about to start and emits
  /// fork(current, child). Call before the native thread launches so the
  /// fork precedes the child's first event in ticket order. Prefers the
  /// drained slot of a joined thread (RecycleThreadSlots); falls back to
  /// a fresh slot under MaxThreads; otherwise waits up to SlotDrainWaitMs
  /// for a retiring ring to drain. On genuine exhaustion (max-live over
  /// the cap) sets \p Child = NoThread and returns ResourceExhausted —
  /// with a one-time supervisor diagnostic and (when the ladder is
  /// enabled) one requested rung downgrade. Detection is never halted and
  /// the application never aborted by running out of slots.
  Status tryForkThread(ThreadId &Child);

  /// tryForkThread() for callers that only need the id: returns NoThread
  /// on exhaustion (the Instrument.h Thread shim runs such children
  /// untracked).
  ThreadId forkThread();

  /// Emits join(current, child) and retires the child's slot for reuse.
  /// Call after the native join returns so every child event precedes it
  /// in ticket order. NoThread (an untracked child) is a no-op.
  void joinThread(ThreadId Child);

  /// Binds the calling thread to dense id \p Id (child bootstrap). The
  /// slot was reserved by forkThread(); the native-thread creation edge
  /// orders this incarnation's ring accesses after the dead previous
  /// incarnation's (producer hand-off: dead producer → native join →
  /// parent fork → native create → new producer).
  void bindCurrentThread(ThreadId Id);

  /// Binds the calling thread to *no* slot: every event it emits is
  /// dropped and counted (OnlineReport::UntrackedEvents). The bootstrap
  /// for children forked after slot exhaustion.
  void bindCurrentThreadUntracked();

private:
  /// Where a slot is in its lifecycle. Transitions (always under
  /// ChannelMu): Live → Retiring at joinThread(), Retiring → Free once
  /// the sequencer has drained the ring (checked lazily at the next
  /// fork), Free → Live at reincarnation — under the *same* dense id, so
  /// the tool's VC column carries the dead incarnation's final clock into
  /// the fork's join (the implicit dead→successor HB edge).
  enum class SlotState : uint8_t { Live, Retiring, Free };

  /// One registered slot: its dense id, its event ring, and its drop
  /// accounting (all counters relaxed; they are aggregated only after
  /// every producer has been joined — a recycled slot's counters span
  /// every incarnation). The Channel object itself is never destroyed or
  /// moved before teardown, whatever its SlotState, so the raw pointers
  /// held by TLS bindings and the sequencer snapshot stay valid.
  struct Channel {
    explicit Channel(ThreadId Id, size_t RingCapacity)
        : Id(Id), Ring(RingCapacity) {}
    ThreadId Id;
    EventRing Ring;
    SlotState State = SlotState::Live; ///< Guarded by ChannelMu.
    std::atomic<uint64_t> DroppedPostHalt{0};
    std::atomic<uint64_t> DroppedOverload{0};
    std::atomic<uint64_t> Parks{0};
  };

  /// One shard worker's whole world: its router→worker ring, its tool
  /// clone and DispatchOnly driver, its watermarks and restart state.
  /// Defined in Engine.cpp.
  struct Shard;

  Channel *channelForCurrentThread();
  Channel *registerThreadLocked(ThreadId Id);
  Channel *acquireSlot(bool ForeignThread);
  /// One allocation attempt under ChannelMu: recycled slot first, then —
  /// only when no retiring slot is about to drain, or the caller's drain
  /// wait already expired (\p FreshDespiteRetiring) — a fresh slot under
  /// MaxThreads. Null means "wait or give up".
  Channel *takeSlotLocked(bool ForeignThread, bool FreshDespiteRetiring = false);
  void promoteDrainedLocked();
  void noteExhaustion(const char *Who);
  bool parkUntilSpace(Channel *Ch, OpKind Kind);
  void sequencerLoop(uint64_t Epoch);
  void routerLoop(uint64_t Epoch);
  void shardLoop(Shard &S, uint64_t MyEpoch);
  bool routeToShard(Shard &S, const OnlineEvent &E);
  unsigned shardIndexFor(uint32_t Target) const;
  uint64_t shardShadowBytes() const;
  ShadowGovernorStats shardGovernorStats() const;
  void supervisorLoop();
  void handleStall(uint64_t Watermark);
  void handleShardStall(Shard &S);
  void restartSequencerLocked();
  void superviseNote(Severity Sev, StatusCode Code, std::string Message);
  void noteMaxBacklog(uint64_t Backlog);

  Tool &Checker;
  OnlineOptions Options;
  uint64_t Gen;
  EntityInterner Interner;
  /// Shard workers in use: resolved before Driver (declaration order
  /// matters — driverOptions() selects the admission-only role from it).
  /// 1 means the single-sequencer engine, whether requested or the
  /// non-ShardableTool fallback.
  unsigned NumShards;
  /// Strength-reduced shardIndexFor: when ShardBlockVars and NumShards
  /// are both powers of two (the defaults and every shipped config), the
  /// block-cyclic map is a shift and a mask instead of two hardware
  /// divisions on the router's per-access path. ~0u = not applicable.
  unsigned ShardDivShift = ~0u;
  uint32_t ShardIdxMask = 0;
  /// Shard clones accepted configureShadowPolicy (set during shard
  /// construction, read by the workers' publish gate and finish()).
  bool ShardMemoryGoverned = false;
  OnlineDriver Driver;
  Trace Capture;
  bool MemCapture;  ///< Keep the in-memory Trace capture.
  bool Capturing;   ///< Collect delivered batches (memory or segments).
  std::unique_ptr<SegmentedTraceWriter> SegWriter;

  /// Registered channels; guarded by ChannelMu. Channels are never
  /// removed before teardown, so raw pointers handed to TLS bindings and
  /// the sequencer stay valid. NumChannels mirrors Channels.size() so the
  /// sequencer can notice registrations without taking the mutex on every
  /// sweep (it locks only to rebuild its snapshot).
  std::mutex ChannelMu;
  std::vector<std::unique_ptr<Channel>> Channels;
  std::atomic<size_t> NumChannels{0};

  // --- slot-lifecycle state (all guarded by ChannelMu; fork/join are
  // cold paths, so a mutex is fine) ---
  std::vector<Channel *> FreeSlots;     ///< Drained, ready to reincarnate.
  std::vector<Channel *> RetiringSlots; ///< Joined, ring not yet drained.
  unsigned LiveSlots = 0;
  unsigned PeakLiveSlots = 0;
  uint64_t ThreadsRecycled = 0;
  std::atomic<uint64_t> ForksRejected{0};
  std::atomic<uint64_t> UntrackedEvents{0};
  std::atomic<uint64_t> ElidedEvents{0};
  std::atomic<bool> ExhaustionNoted{false}; ///< One diagnostic + one
                                            ///< ladder request however
                                            ///< many forks bounce.

  std::atomic<uint64_t> Seq{0};     ///< Next ticket to hand out.
  std::atomic<uint64_t> NextSeq{0}; ///< The merge watermark: next ticket
                                    ///< the sequencer expects. Published
                                    ///< per batch so a restarted sequencer
                                    ///< resumes exactly where its
                                    ///< predecessor stopped.
  std::atomic<bool> Running{true};  ///< Cleared by finish().

  /// Detection stopped (unrecoverable breach, tool fault, or watchdog
  /// give-up); emits drop-and-count. Store/load ordering is
  /// release/acquire: the setter (sequencer or supervisor) publishes the
  /// diagnostics and counters explaining the halt *before* the flag, so
  /// any producer that observes Halted==true — and therefore stops
  /// contributing events — also observes a fully-formed halt state, and
  /// the pre-halt prefix it helped produce is consistent with the report
  /// finish() assembles. Relaxed ordering would let a producer skip
  /// events against a half-published halt.
  std::atomic<bool> Halted{false};

  // --- supervision state ---
  std::atomic<uint64_t> SequencerEpoch{0}; ///< Bumped to abandon the
                                           ///< current sequencer thread.
  std::atomic<bool> DropAccesses{false};   ///< Drop-and-count mode: parked
                                           ///< producers shed accesses.
  std::atomic<bool> SequencerGaveUp{false}; ///< Watchdog exhausted
                                            ///< MaxRestarts; no sequencer
                                            ///< is draining anymore.
  std::atomic<int> ProducersParked{0};
  std::atomic<unsigned> PendingDegrade{0}; ///< Rung downgrades requested
                                           ///< by the supervisor, applied
                                           ///< by the sequencer between
                                           ///< batches (the driver is not
                                           ///< thread-safe).
  std::atomic<uint64_t> DeadlineDrops{0};  ///< Accesses shed by MaxParkMs
                                           ///< expiry (pressure signal).
  std::atomic<uint64_t> MaxBacklogSeen{0};
  std::atomic<unsigned> Restarts{0};
  std::atomic<bool> SupervisorRun{true};
  unsigned StallsSeen = 0; ///< Supervisor-thread private.
  std::mutex SupMu;        ///< Guards SupDiags.
  std::vector<Diagnostic> SupDiags;
  uint64_t DiscardedPostHalt = 0; ///< Sequencer-side post-halt discards
                                  ///< (events ticketed before the halt).

  // --- sharded mode (NumShards > 1) ---
  std::vector<std::unique_ptr<Shard>> ShardSet;
  std::atomic<bool> RouterDone{false}; ///< The router is joined and every
                                       ///< routed event sits in a shard
                                       ///< ring; set by finish() so idle
                                       ///< workers may exit.
  std::atomic<bool> RouterBlockedOnShard{false}; ///< The router is parked
                                       ///< pushing into a full shard
                                       ///< ring: its frozen watermark is
                                       ///< the *shard's* fault, so the
                                       ///< supervisor must restart the
                                       ///< shard, never the router (that
                                       ///< join would deadlock against
                                       ///< the park).
  std::mutex SinkMu;   ///< Serializes OnWarning across shard workers.
  std::mutex ClocksMu; ///< Guards SequencerClocks folds: shard workers
                       ///< and the router can exit concurrently.

  std::thread SequencerThread;
  std::thread SupervisorThread;
  ClockStats SequencerClocks; ///< Accumulated across restarts and shard
                              ///< workers, under ClocksMu.
  Stopwatch Watch;
  OnlineReport Report;
  bool Finished = false;
};

} // namespace ft::runtime

#endif // FASTTRACK_RUNTIME_ENGINE_H
