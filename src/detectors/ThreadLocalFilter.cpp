#include "detectors/ThreadLocalFilter.h"

#include "framework/Replay.h"

using namespace ft;

void ThreadLocalFilter::begin(const ToolContext &Context) {
  Owner.assign(Context.NumVars, NoOwner);
}

bool ThreadLocalFilter::access(ThreadId T, VarId X) {
  if (X >= Owner.size())
    Owner.resize(X + 1, NoOwner);
  uint32_t &State = Owner[X];
  if (State == Shared)
    return true;
  if (State == NoOwner) {
    State = T;
    return false;
  }
  if (State == T)
    return false;
  State = Shared;
  return true;
}

bool ThreadLocalFilter::onRead(ThreadId T, VarId X, size_t) {
  return access(T, X);
}

bool ThreadLocalFilter::onWrite(ThreadId T, VarId X, size_t) {
  return access(T, X);
}

size_t ThreadLocalFilter::shadowBytes() const {
  return Owner.capacity() * sizeof(uint32_t);
}

FT_REGISTER_FAST_REPLAY(::ft::ThreadLocalFilter);
