//===--- MetamorphicTest.cpp - metamorphic and robustness properties ------===//
//
// DESIGN.md §6(3): transformations with known effects on the race
// content of a trace, checked against the oracle and the detectors:
//   - swapping adjacent independent accesses preserves happens-before,
//     so every verdict is invariant;
//   - renaming variables permutes the racy set;
//   - a prefix of a trace can only have a subset of the racy variables;
//   - deleting a critical section's lock operations can only add races;
//   - detectors must stay oracle-exact on mutated traces and must not
//     crash on malformed (infeasible) ones.
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "core/ToolRegistry.h"
#include "detectors/BasicVC.h"
#include "detectors/DjitPlus.h"
#include "framework/Replay.h"
#include "hb/RaceOracle.h"
#include "support/Rng.h"
#include "trace/RandomTrace.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceValidator.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ft;

namespace {

RandomTraceConfig configFor(uint64_t Seed, double Chaos) {
  RandomTraceConfig Config;
  Config.Seed = Seed;
  Config.NumThreads = 3 + Seed % 3;
  Config.NumVars = 10 + Seed % 12;
  Config.NumLocks = 1 + Seed % 3;
  Config.OpsPerThread = 30 + Seed % 40;
  Config.ChaosProbability = Chaos;
  return Config;
}

std::vector<VarId> warnedVars(Tool &Checker, const Trace &T) {
  replay(T, Checker);
  std::vector<VarId> Vars;
  for (const RaceWarning &W : Checker.warnings())
    Vars.push_back(W.Var);
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return Vars;
}

/// Rebuilds \p T with up to \p Attempts swaps of adjacent operations that
/// are (a) both plain accesses, (b) by different threads, (c) to
/// different variables — a transformation that preserves the
/// happens-before relation exactly.
Trace swapIndependentNeighbors(const Trace &T, uint64_t Seed,
                               unsigned Attempts) {
  std::vector<Operation> Ops(T.begin(), T.end());
  Xoshiro256StarStar Rng(Seed);
  for (unsigned A = 0; A != Attempts && Ops.size() > 1; ++A) {
    size_t I = Rng.nextBelow(Ops.size() - 1);
    Operation &X = Ops[I];
    Operation &Y = Ops[I + 1];
    if (isAccess(X.Kind) && isAccess(Y.Kind) && X.Thread != Y.Thread &&
        X.Target != Y.Target)
      std::swap(X, Y);
  }
  Trace Out;
  for (const Operation &Op : Ops) {
    if (Op.Kind == OpKind::Barrier)
      Out.appendBarrier(T.barrierSet(Op.Target));
    else
      Out.append(Op);
  }
  return Out;
}

/// Renames every variable id via an affine permutation.
Trace renameVars(const Trace &T, VarId Stride, VarId Space) {
  Trace Out;
  for (const Operation &Op : T) {
    if (Op.Kind == OpKind::Barrier) {
      Out.appendBarrier(T.barrierSet(Op.Target));
      continue;
    }
    Operation Copy = Op;
    if (isAccess(Op.Kind))
      Copy.Target = (Op.Target * Stride + 1) % Space;
    Out.append(Copy);
  }
  return Out;
}

} // namespace

class Metamorphic : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Metamorphic, IndependentSwapsPreserveEveryVerdict) {
  Trace T = generateRandomTrace(configFor(GetParam(), 0.25));
  Trace Mutant = swapIndependentNeighbors(T, GetParam() * 31 + 7, 200);
  ASSERT_EQ(Mutant.size(), T.size());

  EXPECT_EQ(racyVars(Mutant), racyVars(T)) << "seed " << GetParam();
  FastTrack FtOrig, FtMutant;
  EXPECT_EQ(warnedVars(FtMutant, Mutant), warnedVars(FtOrig, T))
      << "seed " << GetParam();
}

TEST_P(Metamorphic, VariableRenamingPermutesTheRacySet) {
  Trace T = generateRandomTrace(configFor(GetParam(), 0.3));
  // Stride 1 keeps id arithmetic a bijection over [0, Space).
  VarId Space = T.numVars();
  Trace Renamed = renameVars(T, 1, Space);

  std::vector<VarId> Expected;
  for (VarId X : racyVars(T))
    Expected.push_back((X + 1) % Space);
  std::sort(Expected.begin(), Expected.end());

  EXPECT_EQ(racyVars(Renamed), Expected) << "seed " << GetParam();
  FastTrack Ft;
  EXPECT_EQ(warnedVars(Ft, Renamed), Expected) << "seed " << GetParam();
}

TEST_P(Metamorphic, PrefixRacesAreASubsetOfFullTraceRaces) {
  Trace T = generateRandomTrace(configFor(GetParam(), 0.3));
  Trace Prefix;
  size_t Keep = T.size() / 2;
  for (size_t I = 0; I != Keep; ++I) {
    if (T[I].Kind == OpKind::Barrier) {
      std::vector<ThreadId> Set = T.barrierSet(T[I].Target);
      Prefix.appendBarrier(Set);
    } else {
      Prefix.append(T[I]);
    }
  }
  std::vector<VarId> Full = racyVars(T);
  for (VarId X : racyVars(Prefix))
    EXPECT_TRUE(std::binary_search(Full.begin(), Full.end(), X))
        << "seed " << GetParam() << " var " << X;
}

TEST_P(Metamorphic, DroppingACriticalSectionOnlyAddsRaces) {
  Trace T = generateRandomTrace(configFor(GetParam(), 0.0));
  std::vector<VarId> Before = racyVars(T);

  // Remove the first acquire and its matching release (same thread and
  // lock), leaving that critical section unprotected.
  Trace Mutant;
  bool Removed = false;
  ThreadId Holder = 0;
  LockId Lock = 0;
  bool LookingForRelease = false;
  for (const Operation &Op : T) {
    if (!Removed && !LookingForRelease && Op.Kind == OpKind::Acquire) {
      Holder = Op.Thread;
      Lock = Op.Target;
      LookingForRelease = true;
      continue; // drop the acquire
    }
    if (LookingForRelease && Op.Kind == OpKind::Release &&
        Op.Thread == Holder && Op.Target == Lock) {
      LookingForRelease = false;
      Removed = true;
      continue; // drop the matching release
    }
    if (Op.Kind == OpKind::Barrier)
      Mutant.appendBarrier(T.barrierSet(Op.Target));
    else
      Mutant.append(Op);
  }
  if (!Removed)
    GTEST_SKIP() << "trace had no critical section";

  std::vector<VarId> After = racyVars(Mutant);
  // Removing synchronization can only remove happens-before edges.
  for (VarId X : Before)
    EXPECT_TRUE(std::binary_search(After.begin(), After.end(), X))
        << "seed " << GetParam();

  // The detectors stay oracle-exact even on the mutated trace.
  FastTrack Ft;
  DjitPlus Djit;
  EXPECT_EQ(warnedVars(Ft, Mutant), After) << "seed " << GetParam();
  EXPECT_EQ(warnedVars(Djit, Mutant), After) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Metamorphic,
                         ::testing::Range<uint64_t>(1, 31));

//===----------------------------------------------------------------------===//
// Robustness: infeasible traces must not crash any tool. Verdicts are
// unspecified (the algorithms assume feasibility), but memory safety and
// termination are not.
//===----------------------------------------------------------------------===//

TEST(Robustness, ToolsSurviveMalformedTraces) {
  std::vector<Trace> Malformed;
  // Release without acquire.
  Malformed.push_back(TraceBuilder().rel(0, 0).wr(0, 0).take());
  // Operations of a never-forked thread.
  Malformed.push_back(TraceBuilder().wr(5, 0).rd(5, 1).take());
  // Double fork and operation after join.
  Malformed.push_back(TraceBuilder()
                          .fork(0, 1)
                          .wr(1, 0)
                          .fork(0, 1)
                          .join(0, 1)
                          .wr(1, 0)
                          .take());
  // Join of an unforked thread; self-ish lock churn.
  Malformed.push_back(
      TraceBuilder().join(0, 3).acq(0, 0).acq(0, 0).rel(0, 0).take());

  for (size_t I = 0; I != Malformed.size(); ++I) {
    EXPECT_FALSE(isFeasible(Malformed[I])) << "case " << I;
    for (const std::string &Name : registeredToolNames()) {
      auto Checker = createTool(Name);
      ReplayOptions Options;
      Options.FilterReentrantLocks = true; // absorbs the lock nesting
      replay(Malformed[I], *Checker, Options);
      SUCCEED();
    }
  }
}

TEST(Robustness, EmptyAndSingleOpTraces) {
  Trace Empty;
  Trace Single = TraceBuilder().wr(0, 0).take();
  for (const std::string &Name : registeredToolNames()) {
    auto A = createTool(Name);
    replay(Empty, *A);
    EXPECT_TRUE(A->warnings().empty()) << Name;
    auto B = createTool(Name);
    replay(Single, *B);
    EXPECT_TRUE(B->warnings().empty()) << Name;
  }
}

TEST(Robustness, ToolReuseAcrossReplaysResetsState) {
  Trace Racy = TraceBuilder().fork(0, 1).wr(0, 0).wr(1, 0).take();
  Trace Clean = TraceBuilder().fork(0, 1).lockedWr(0, 0, 0)
                    .lockedWr(1, 0, 0).take();
  FastTrack Detector;
  replay(Racy, Detector);
  EXPECT_EQ(Detector.warnings().size(), 1u);
  Detector.clearWarnings();
  replay(Clean, Detector); // begin() must fully reset shadow state
  EXPECT_TRUE(Detector.warnings().empty());
}
