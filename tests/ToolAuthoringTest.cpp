//===--- ToolAuthoringTest.cpp - the TOOL_AUTHORING.md worked example -----===//
//
// The complete tool from docs/TOOL_AUTHORING.md, compiled and pinned by
// tests. The guide's code blocks are excerpts of the MiniLockSet class
// below — keep the two in sync when either changes. The tests exercise
// every integration point the guide walks through: serial replay(),
// pipeline composition via replayFiltered(), and opting into the sharded
// parallel engine through ShardableTool.
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "framework/ParallelReplay.h"
#include "framework/Replay.h"
#include "framework/ShardableTool.h"
#include "framework/Tool.h"
#include "trace/RandomTrace.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

using namespace ft;

namespace {

/// The guide's example analysis: a deliberately naive lockset check.
/// MiniLockSet warns when a variable has been accessed by two different
/// threads and the intersection of the locks held across all its
/// accesses is empty — Eraser stripped of its ownership state machine,
/// small enough to read in one sitting yet touching every part of the
/// Tool API: context-driven shadow sizing, access handlers, sync
/// handlers, warning reporting, memory accounting, and sharding.
class MiniLockSet : public Tool, public ShardableTool {
public:
  const char *name() const override { return "MiniLockSet"; }

  /// Step 1 — size shadow state from the trace's static facts. The
  /// context already reflects any granularity remapping.
  void begin(const ToolContext &Context) override {
    Held.assign(Context.NumThreads, {});
    Vars.assign(Context.NumVars, {});
  }

  /// Step 2 — access handlers. Returning true means "interesting" when
  /// the tool acts as a prefilter in a composed pipeline; tools that are
  /// not filters simply return true.
  bool onRead(ThreadId T, VarId X, size_t OpIndex) override {
    return access(T, X, OpIndex, OpKind::Read);
  }
  bool onWrite(ThreadId T, VarId X, size_t OpIndex) override {
    return access(T, X, OpIndex, OpKind::Write);
  }

  /// Step 3 — synchronization handlers. MiniLockSet only needs the
  /// locks-held sets; unimplemented events default to no-ops.
  void onAcquire(ThreadId T, LockId M, size_t) override {
    Held[T].push_back(M);
  }
  void onRelease(ThreadId T, LockId M, size_t) override {
    auto It = std::find(Held[T].begin(), Held[T].end(), M);
    if (It != Held[T].end())
      Held[T].erase(It);
  }

  /// Step 4 — memory accounting for the Table 3 style benchmarks.
  size_t shadowBytes() const override {
    size_t Bytes = Vars.capacity() * sizeof(VarShadow);
    for (const VarShadow &S : Vars)
      Bytes += S.Candidates.capacity() * sizeof(LockId);
    return Bytes;
  }

  /// Step 6 (optional) — sharding. Per-variable state depends only on
  /// that variable's accesses plus the locks-held sets, which are a
  /// function of the sync schedule alone, so MiniLockSet is shard-safe.
  /// It is not vector-clock shaped, so each worker replays the (cheap)
  /// sync events through its own clone: ShardMode::SyncReplay.
  ShardMode shardMode() const override { return ShardMode::SyncReplay; }
  std::unique_ptr<Tool> cloneForShard() const override {
    return std::make_unique<MiniLockSet>();
  }
  void mergeShard(Tool &) override {} // warnings merge in the engine

private:
  struct VarShadow {
    bool Accessed = false;
    bool MultiThreaded = false;
    ThreadId First = 0;
    std::vector<LockId> Candidates; ///< ∩ of locks held at each access.
  };

  bool access(ThreadId T, VarId X, size_t OpIndex, OpKind Kind) {
    VarShadow &S = Vars[X];
    if (!S.Accessed) {
      S.Accessed = true;
      S.First = T;
      S.Candidates = Held[T];
      return true;
    }
    if (T != S.First)
      S.MultiThreaded = true;
    // Candidates ∩= Held[T].
    auto Unheld = [&](LockId M) {
      return std::find(Held[T].begin(), Held[T].end(), M) == Held[T].end();
    };
    S.Candidates.erase(
        std::remove_if(S.Candidates.begin(), S.Candidates.end(), Unheld),
        S.Candidates.end());
    if (S.MultiThreaded && S.Candidates.empty()) {
      RaceWarning W;
      W.Var = X;
      W.OpIndex = OpIndex;
      W.CurrentThread = T;
      W.CurrentKind = Kind;
      W.Detail = "no common lock";
      reportRace(std::move(W)); // deduplicates to one warning per var
    }
    return true;
  }

  std::vector<std::vector<LockId>> Held;
  std::vector<VarShadow> Vars;
};

} // namespace

TEST(ToolAuthoring, GuideExampleFlagsUnlockedSharing) {
  // x0 is consistently protected by lock m0; x1 is shared with no lock.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .lockedWr(0, 0, 0)
                .lockedWr(1, 0, 0)
                .wr(0, 1)
                .wr(1, 1)
                .join(0, 1)
                .take();
  MiniLockSet Checker;
  ReplayResult Result = replay(T, Checker);
  ASSERT_EQ(Checker.warnings().size(), 1u);
  const RaceWarning &W = Checker.warnings().front();
  EXPECT_EQ(W.Var, 1u);
  EXPECT_EQ(W.CurrentThread, 1u);
  EXPECT_EQ(W.Detail, "no common lock");
  EXPECT_EQ(Result.Events, T.size());
  EXPECT_GT(Checker.shadowBytes(), 0u);
}

TEST(ToolAuthoring, GuideExampleIsQuietOnDisciplinedTraces) {
  RandomTraceConfig Config;
  Config.Seed = 21;
  Config.ThreadLocalShare = 0.0;
  Config.ReadSharedShare = 0.0; // everything lock-protected
  Trace T = generateRandomTrace(Config);
  MiniLockSet Checker;
  replay(T, Checker);
  EXPECT_TRUE(Checker.warnings().empty());
}

TEST(ToolAuthoring, GuideExampleComposesAsPipelineDownstream) {
  // "-tool FastTrack:MiniLockSet": FastTrack's pass flag filters the
  // boring accesses; the downstream tool sees sync events plus whatever
  // survives the filter.
  RandomTraceConfig Config;
  Config.Seed = 5;
  Config.ChaosProbability = 0.08;
  Trace T = generateRandomTrace(Config);

  FastTrack Filter;
  MiniLockSet Downstream;
  PipelineResult Result = replayFiltered(T, Filter, Downstream);
  EXPECT_EQ(Result.Total.Events, T.size());

  MiniLockSet Solo;
  replay(T, Solo);
  // The filter can only shrink what the downstream tool complains about.
  EXPECT_LE(Downstream.warnings().size(), Solo.warnings().size());
}

TEST(ToolAuthoring, GuideExampleShardsDeterministically) {
  RandomTraceConfig Config;
  Config.Seed = 13;
  Config.NumThreads = 6;
  Config.NumVars = 40;
  Config.OpsPerThread = 300;
  Config.ChaosProbability = 0.05;
  Trace T = generateRandomTrace(Config);

  MiniLockSet Serial;
  replay(T, Serial);
  ASSERT_FALSE(Serial.warnings().empty()); // the sweep must exercise merge

  for (unsigned Shards : {2u, 4u, 8u}) {
    MiniLockSet Sharded;
    ParallelReplayOptions Options;
    Options.NumShards = Shards;
    ParallelReplayResult Result = parallelReplay(T, Sharded, Options);
    EXPECT_TRUE(Result.Sharded);
    EXPECT_EQ(Result.Mode, ShardMode::SyncReplay);
    ASSERT_EQ(Sharded.warnings().size(), Serial.warnings().size());
    for (size_t I = 0; I != Serial.warnings().size(); ++I) {
      EXPECT_EQ(Sharded.warnings()[I].Var, Serial.warnings()[I].Var);
      EXPECT_EQ(Sharded.warnings()[I].OpIndex, Serial.warnings()[I].OpIndex);
    }
  }
}
