#include "framework/Replay.h"

#include "support/Stopwatch.h"

#include <unordered_map>

using namespace ft;

namespace {

/// Tracks per-(thread, lock) nesting depth to strip redundant re-entrant
/// acquire/release pairs, as RoadRunner does before events reach tools.
class ReentrancyFilter {
public:
  /// Returns true when this acquire is the outermost one (dispatch it).
  bool onAcquire(ThreadId T, LockId M) {
    return ++Depth[key(T, M)] == 1;
  }

  /// Returns true when this release exits the outermost level.
  bool onRelease(ThreadId T, LockId M) {
    auto It = Depth.find(key(T, M));
    if (It == Depth.end() || It->second == 0)
      return true; // Infeasible trace; dispatch and let tools cope.
    if (--It->second == 0) {
      Depth.erase(It);
      return true;
    }
    return false;
  }

private:
  static uint64_t key(ThreadId T, LockId M) {
    return (static_cast<uint64_t>(T) << 32) | M;
  }
  std::unordered_map<uint64_t, unsigned> Depth;
};

/// Precomputed variable remapping for the requested granularity.
struct VarMap {
  const std::vector<uint32_t> *Explicit = nullptr;
  unsigned Divisor = 1;
  bool Identity = true;

  VarId map(VarId X) const {
    if (Identity)
      return X;
    if (Explicit)
      return X < Explicit->size() ? (*Explicit)[X] : X;
    return X / Divisor;
  }
};

VarMap makeVarMap(const ReplayOptions &Options) {
  VarMap Map;
  if (Options.Gran == Granularity::Fine)
    return Map;
  Map.Identity = false;
  Map.Explicit = Options.VarToObject;
  Map.Divisor = Options.DefaultFieldsPerObject ? Options.DefaultFieldsPerObject
                                               : 1;
  return Map;
}

ToolContext makeContext(const Trace &T, const VarMap &Map) {
  ToolContext Context;
  Context.NumThreads = T.numThreads();
  Context.NumLocks = T.numLocks();
  Context.NumVolatiles = T.numVolatiles();
  if (Map.Identity) {
    Context.NumVars = T.numVars();
  } else {
    unsigned MaxVar = 0;
    for (VarId X = 0; X != T.numVars(); ++X)
      MaxVar = std::max(MaxVar, Map.map(X) + 1);
    Context.NumVars = MaxVar;
  }
  return Context;
}

/// The shared replay loop. \p ForEachAccess receives the access events and
/// decides what "passed" means; sync events are dispatched via \p Sync.
template <typename AccessFn, typename SyncFn>
void replayLoop(const Trace &T, const ReplayOptions &Options,
                const VarMap &Map, AccessFn &&Access, SyncFn &&Sync,
                uint64_t &Events) {
  ReentrancyFilter Reentrancy;
  bool FilterLocks = Options.FilterReentrantLocks;

  for (size_t I = 0, E = T.size(); I != E; ++I) {
    const Operation &Op = T[I];
    switch (Op.Kind) {
    case OpKind::Read:
    case OpKind::Write:
      ++Events;
      Access(Op.Kind, Op.Thread, Map.map(Op.Target), I);
      break;
    case OpKind::Acquire:
      if (FilterLocks && !Reentrancy.onAcquire(Op.Thread, Op.Target))
        break;
      ++Events;
      Sync(Op, I);
      break;
    case OpKind::Release:
      if (FilterLocks && !Reentrancy.onRelease(Op.Thread, Op.Target))
        break;
      ++Events;
      Sync(Op, I);
      break;
    default:
      ++Events;
      Sync(Op, I);
      break;
    }
  }
}

void dispatchSync(Tool &Checker, const Trace &T, const Operation &Op,
                  size_t I) {
  switch (Op.Kind) {
  case OpKind::Acquire:
    Checker.onAcquire(Op.Thread, Op.Target, I);
    break;
  case OpKind::Release:
    Checker.onRelease(Op.Thread, Op.Target, I);
    break;
  case OpKind::Fork:
    Checker.onFork(Op.Thread, Op.Target, I);
    break;
  case OpKind::Join:
    Checker.onJoin(Op.Thread, Op.Target, I);
    break;
  case OpKind::VolatileRead:
    Checker.onVolatileRead(Op.Thread, Op.Target, I);
    break;
  case OpKind::VolatileWrite:
    Checker.onVolatileWrite(Op.Thread, Op.Target, I);
    break;
  case OpKind::Barrier:
    Checker.onBarrier(T.barrierSet(Op.Target), I);
    break;
  case OpKind::AtomicBegin:
    Checker.onAtomicBegin(Op.Thread, I);
    break;
  case OpKind::AtomicEnd:
    Checker.onAtomicEnd(Op.Thread, I);
    break;
  case OpKind::Read:
  case OpKind::Write:
    break; // handled by the access path
  }
}

} // namespace

ReplayResult ft::replay(const Trace &T, Tool &Checker,
                        const ReplayOptions &Options) {
  VarMap Map = makeVarMap(Options);
  ReplayResult Result;
  ClockStats Before = clockStats();

  Stopwatch Watch;
  Checker.begin(makeContext(T, Map));
  replayLoop(
      T, Options, Map,
      [&](OpKind Kind, ThreadId Thread, VarId X, size_t I) {
        bool Passed = Kind == OpKind::Read ? Checker.onRead(Thread, X, I)
                                           : Checker.onWrite(Thread, X, I);
        Result.AccessesPassed += Passed;
      },
      [&](const Operation &Op, size_t I) { dispatchSync(Checker, T, Op, I); },
      Result.Events);
  Checker.end();
  Result.Seconds = Watch.seconds();

  Result.Clocks = clockStats() - Before;
  Result.ShadowBytes = Checker.shadowBytes();
  Result.NumWarnings = Checker.warnings().size();
  return Result;
}

PipelineResult ft::replayFiltered(const Trace &T, Tool &Filter,
                                  Tool &Downstream,
                                  const ReplayOptions &Options) {
  VarMap Map = makeVarMap(Options);
  PipelineResult Result;
  ClockStats Before = clockStats();
  ToolContext Context = makeContext(T, Map);

  Stopwatch Watch;
  Filter.begin(Context);
  Downstream.begin(Context);
  replayLoop(
      T, Options, Map,
      [&](OpKind Kind, ThreadId Thread, VarId X, size_t I) {
        ++Result.AccessesSeen;
        if (Kind == OpKind::Read) {
          if (!Filter.onRead(Thread, X, I))
            return;
          ++Result.AccessesForwarded;
          Downstream.onRead(Thread, X, I);
        } else {
          if (!Filter.onWrite(Thread, X, I))
            return;
          ++Result.AccessesForwarded;
          Downstream.onWrite(Thread, X, I);
        }
      },
      [&](const Operation &Op, size_t I) {
        dispatchSync(Filter, T, Op, I);
        dispatchSync(Downstream, T, Op, I);
      },
      Result.Total.Events);
  Filter.end();
  Downstream.end();
  Result.Total.Seconds = Watch.seconds();

  Result.Total.Clocks = clockStats() - Before;
  Result.Total.ShadowBytes = Filter.shadowBytes() + Downstream.shadowBytes();
  Result.Total.NumWarnings =
      Filter.warnings().size() + Downstream.warnings().size();
  Result.Total.AccessesPassed = Result.AccessesForwarded;
  return Result;
}
