#include "analysis/Analysis.h"

#include "analysis/CallGraph.h"
#include "analysis/Lockset.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace ft;
using namespace ft::analysis;
using namespace ft::lang;

const char *ft::analysis::verdictName(Verdict V) {
  switch (V) {
  case Verdict::MustInstrument:
    return "must-instrument";
  case Verdict::ThreadLocal:
    return "thread-local";
  case Verdict::LockConsistent:
    return "lock-consistent";
  }
  return "?";
}

namespace {

/// Classifies one variable from the facts of its reachable, non-pre-fork
/// ("effective") sites.
VarClass classifyVar(const Program &P, uint32_t G,
                     const std::vector<size_t> &SiteIdx,
                     const ProgramFacts &Facts, const CallGraphInfo &CG,
                     const LocksetInfo &Locks) {
  VarClass Out;
  Out.Name = P.Globals[G].Name;
  Out.GlobalIndex = G;
  Out.NumSites = static_cast<unsigned>(SiteIdx.size());

  // Sites that can actually run, split into the pre-fork prefix (whose
  // effects happen-before every forked thread) and the rest.
  std::vector<size_t> Effective;
  bool AnyPreFork = false;
  for (size_t I : SiteIdx) {
    const AccessSiteFact &Site = Facts.Sites[I];
    if (CG.FnMult[Site.Fn] == Mult::Zero)
      continue; // statically unreachable: never emits
    if (Site.PreFork)
      AnyPreFork = true;
    else
      Effective.push_back(I);
  }

  if (Effective.empty()) {
    Out.V = Verdict::ThreadLocal;
    Out.Reason = AnyPreFork ? "only accessed before the first fork"
                            : "no reachable accesses";
    return Out;
  }

  // Which abstract threads reach an effective site, and can any of them
  // stand for more than one dynamic thread?
  std::set<uint32_t> Threads;
  bool Many = false;
  for (size_t I : Effective)
    for (uint32_t T : CG.FnThreads[Facts.Sites[I].Fn]) {
      Threads.insert(T);
      Many |= CG.Threads[T].Instances == Mult::Many;
    }

  if (Threads.size() <= 1 && !Many) {
    Out.V = Verdict::ThreadLocal;
    std::string Who =
        Threads.empty() ? "no thread" : CG.Threads[*Threads.begin()].Name;
    Out.Reason = "only " + Who + " accesses it";
    if (AnyPreFork)
      Out.Reason += " after main's pre-fork init";
    return Out;
  }

  // Lockset-at-site: a lock held across every effective access orders
  // all conflicting pairs via rel→acq.
  std::set<uint32_t> Common = Locks.SiteLocks[Effective.front()];
  for (size_t I : Effective) {
    std::set<uint32_t> Next;
    for (uint32_t L : Common)
      if (Locks.SiteLocks[I].count(L))
        Next.insert(L);
    Common = std::move(Next);
    if (Common.empty())
      break;
  }
  if (!Common.empty()) {
    Out.V = Verdict::LockConsistent;
    Out.Reason = "every access holds lock '" +
                 P.Locks[*Common.begin()].Name + "'";
    if (AnyPreFork)
      Out.Reason += " (pre-fork init excluded)";
    return Out;
  }

  Out.V = Verdict::MustInstrument;
  // Name the offender: an unlocked site if there is one, otherwise the
  // sets merely disagree across paths.
  const AccessSiteFact *Unlocked = nullptr;
  for (size_t I : Effective)
    if (Locks.SiteLocks[I].empty()) {
      Unlocked = &Facts.Sites[I];
      break;
    }
  if (Unlocked)
    Out.Reason = "unlocked access in '" + P.Functions[Unlocked->Fn].Name +
                 "' at line " + std::to_string(Unlocked->Node->Line);
  else
    Out.Reason = "no lock common to all access sites";
  return Out;
}

} // namespace

AnalysisResult ft::analysis::analyzeProgram(Program &P) {
  assert(P.MainIndex >= 0 && "program must be resolved before analysis");
  ProgramFacts Facts = collectFacts(P);
  CallGraphInfo CG = buildCallGraph(P, Facts);
  LocksetInfo Locks = computeLocksets(P, Facts);

  AnalysisResult Result;

  // Group sites by variable.
  std::vector<std::vector<size_t>> SitesOfVar(P.Globals.size());
  for (size_t I = 0; I != Facts.Sites.size(); ++I)
    SitesOfVar[Facts.Sites[I].GlobalIndex].push_back(I);

  Result.Vars.reserve(P.Globals.size());
  for (uint32_t G = 0; G != P.Globals.size(); ++G)
    Result.Vars.push_back(
        classifyVar(P, G, SitesOfVar[G], Facts, CG, Locks));

  Result.Sites.reserve(Facts.Sites.size());
  for (size_t I = 0; I != Facts.Sites.size(); ++I) {
    const AccessSiteFact &Site = Facts.Sites[I];
    const VarClass &Var = Result.Vars[Site.GlobalIndex];
    SiteReport R;
    R.Line = Site.Node->Line;
    R.Column = Site.Node->Column;
    R.Function = P.Functions[Site.Fn].Name;
    R.Variable = Var.Name;
    R.GlobalIndex = Site.GlobalIndex;
    R.IsWrite = Site.IsWrite;
    R.PreFork = Site.PreFork;
    for (uint32_t L : Locks.SiteLocks[I])
      R.HeldLocks.push_back(P.Locks[L].Name);
    R.V = Var.V;
    R.Reason = Var.Reason;
    R.Node = Site.Node;
    Result.Sites.push_back(std::move(R));
  }
  return Result;
}
