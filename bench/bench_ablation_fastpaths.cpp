//===----------------------------------------------------------------------===//
//
// Experiment E8 (ablation) — what each FastTrack design choice buys.
// Four configurations over the compute-bound benchmarks:
//   full            — the published algorithm;
//   no-same-epoch   — disable [FT READ/WRITE SAME EPOCH];
//   no-epoch-reads  — read state is always a vector clock (DJIT+'s read
//                     representation, Section 3's "Detecting Read-Write
//                     Races" discussion);
//   extended-shared — the optional same-epoch check for read-shared data
//                     (covers 78% of reads "but does not improve
//                     performance of our prototype perceptibly", §3).
// DJIT+ is included as the reference point.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FastTrack.h"
#include "detectors/DjitPlus.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace ft;
using namespace ft::bench;

int main(int argc, char **argv) {
  BenchReport Report("bench_ablation_fastpaths", argc, argv);
  banner("Ablation: FastTrack fast paths");

  struct Config {
    const char *Name;
    FastTrackOptions Options;
  };
  std::vector<Config> Configs = {
      {"full", {}},
      {"no-same-epoch", {}},
      {"no-epoch-reads", {}},
      {"extended-shared", {}},
  };
  Configs[1].Options.SameEpochFastPath = false;
  Configs[2].Options.EpochReads = false;
  Configs[3].Options.ExtendedSharedSameEpoch = true;

  Table Out;
  Out.addHeader({"Program", "full", "no-same-epoch", "no-epoch-reads",
                 "extended-shared", "DJIT+", "allocs full",
                 "allocs no-epoch-reads"});

  double Sum[5] = {0, 0, 0, 0, 0};
  unsigned Count = 0;

  for (const Workload &W : benchmarkSuite()) {
    if (!W.ComputeBound)
      continue;
    Trace T = W.Generate(/*Seed=*/1, sizeFactor());

    std::vector<std::string> Row = {W.Name};
    double Times[5];
    uint64_t Allocs[2] = {0, 0};
    for (size_t I = 0; I != Configs.size(); ++I) {
      FastTrack Checker(Configs[I].Options);
      ReplayResult Result = timedReplay(T, Checker);
      Times[I] = Result.Seconds;
      Row.push_back(fixed(Result.Seconds * 1e3, 1) + "ms");
      if (I == 0 || I == 2) {
        // Allocation counts need a fresh tool: repeated replays recycle
        // the Rvc buffers and would undercount.
        FastTrack Fresh(Configs[I].Options);
        Allocs[I == 0 ? 0 : 1] = replay(T, Fresh).Clocks.Allocations;
      }
    }
    DjitPlus Djit;
    Times[4] = timedReplay(T, Djit).Seconds;
    Row.push_back(fixed(Times[4] * 1e3, 1) + "ms");
    Row.push_back(withCommas(Allocs[0]));
    Row.push_back(withCommas(Allocs[1]));
    Out.addRow(Row);

    ++Count;
    for (int I = 0; I != 5; ++I)
      Sum[I] += Times[I];
  }

  Out.addSeparator();
  Out.addRow({"Total", fixed(Sum[0] * 1e3, 1) + "ms",
              fixed(Sum[1] * 1e3, 1) + "ms", fixed(Sum[2] * 1e3, 1) + "ms",
              fixed(Sum[3] * 1e3, 1) + "ms", fixed(Sum[4] * 1e3, 1) + "ms",
              "", ""});
  std::fputs(Out.render().c_str(), stdout);

  std::printf("\nExpected: 'full' fastest; removing epoch reads inflates "
              "allocations toward DJIT+'s; the extended same-epoch check "
              "changes little (as the paper observed).\n");
  const char *ConfigNames[5] = {"full", "no_same_epoch", "no_epoch_reads",
                                "extended_shared", "djit"};
  for (int I = 0; I != 5; ++I)
    Report.metric(std::string("total_") + ConfigNames[I] + "_seconds", Sum[I],
                  "s");
  return Report.write() ? 0 : 1;
}
