//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ERASER: the classic LockSet race detector of Savage et al. (TOCS 1997),
/// extended to handle barrier synchronization as in the paper's evaluation
/// (Section 5.1 cites MultiRace's barrier extension [29]).
///
/// Eraser enforces a lock-based synchronization discipline: some lock must
/// be consistently held on every access to each shared location. It is
/// fast but imprecise in both directions:
///   - false alarms on fork/join, volatile, and other non-lock
///     synchronization idioms (e.g. the lufact/sor/series warnings in
///     Table 1);
///   - missed races due to the deliberately unsound Virgin/Exclusive/
///     Shared state machine (e.g. two of the hedc races, Section 5.1).
/// Both behaviours are reproduced faithfully here.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_DETECTORS_ERASER_H
#define FASTTRACK_DETECTORS_ERASER_H

#include "detectors/LockSet.h"
#include "framework/ShardableTool.h"
#include "framework/Tool.h"

namespace ft {

/// Per-variable state of Eraser's ownership state machine.
enum class EraserVarState : uint8_t {
  Virgin,         ///< Never accessed.
  Exclusive,      ///< Accessed by a single thread so far.
  Shared,         ///< Read-shared: multiple readers, no conflicting write.
  SharedModified, ///< Written while shared: candidate lockset enforced.
};

/// The Eraser analysis with barrier support. Per-variable state depends
/// only on that variable's accesses plus the locks-held sets and barrier
/// generation — all functions of the sync schedule — so Eraser shards by
/// variable with each worker replaying the (cheap) sync events itself.
class Eraser : public Tool, public ShardableTool {
public:
  /// When true (default), a barrier release resets the state machine of
  /// every variable, modelling the barrier-aware Eraser the paper
  /// benchmarks ("the total number of warnings is about three times
  /// higher if ERASER does not reason about barriers").
  explicit Eraser(bool BarrierAware = true) : BarrierAware(BarrierAware) {}

  const char *name() const override { return "Eraser"; }

  void begin(const ToolContext &Context) override;
  bool onRead(ThreadId T, VarId X, size_t OpIndex) override;
  bool onWrite(ThreadId T, VarId X, size_t OpIndex) override;
  void onAcquire(ThreadId T, LockId M, size_t OpIndex) override;
  void onRelease(ThreadId T, LockId M, size_t OpIndex) override;
  void onBarrier(const std::vector<ThreadId> &Threads,
                 size_t OpIndex) override;
  size_t shadowBytes() const override;

  /// Returns true when the lockset discipline has already failed for \p X
  /// (SharedModified with an empty candidate set). The Atomizer checker
  /// uses this to classify accesses as non-movers, mirroring how the
  /// original Atomizer embeds Eraser (Section 5.2, footnote 7).
  bool isUnprotected(VarId X) const {
    return X < Vars.size() &&
           Vars[X].State == EraserVarState::SharedModified &&
           Vars[X].Candidates.empty();
  }

  // ShardableTool: lockset bookkeeping is not vector-clock shaped, so
  // each worker replays the sync schedule through its own clone.
  ShardMode shardMode() const override { return ShardMode::SyncReplay; }
  std::unique_ptr<Tool> cloneForShard() const override {
    return std::make_unique<Eraser>(BarrierAware);
  }
  void mergeShard(Tool &) override {}

private:
  struct VarShadow {
    EraserVarState State = EraserVarState::Virgin;
    ThreadId Owner = 0;
    /// Barrier generation at last access; stale shadow is reset lazily.
    uint32_t Generation = 0;
    /// Candidate lockset C(v); meaningful in Shared/SharedModified.
    LockSet Candidates;
  };

  /// Lazily resets \p Shadow if it predates the current barrier phase.
  void refresh(VarShadow &Shadow);
  void warnIfUnprotected(const VarShadow &Shadow, ThreadId T, VarId X,
                         size_t OpIndex, OpKind Kind);

  bool BarrierAware;
  uint32_t Generation = 0;
  HeldLocks Held;
  std::vector<VarShadow> Vars;
};

} // namespace ft

#endif // FASTTRACK_DETECTORS_ERASER_H
