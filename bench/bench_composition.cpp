//===----------------------------------------------------------------------===//
//
// Experiment E6 — Section 5.2's analysis-composition table: the slowdown
// of the Atomizer, Velodrome, and SingleTrack checkers under five
// prefilters (NONE, TL, ERASER, DJIT+, FASTTRACK), normalized to the
// EMPTY tool on the same trace.
//
// Paper (average slowdowns over the uninstrumented programs):
//             NONE   TL  ERASER  DJIT+  FASTTRACK
//   Atomizer   57.2 16.8   (n/a)  17.5      12.6
//   Velodrome  57.9 27.1   14.9   19.6      11.3
//   SingleTrack 104.1 55.4 32.7   19.7      11.7
// (Atomizer has no Eraser column: it already embeds Eraser, footnote 7.)
// Shape: every filter helps; the FastTrack prefilter helps the most.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "checkers/Atomizer.h"
#include "checkers/SingleTrack.h"
#include "checkers/Velodrome.h"
#include "core/FastTrack.h"
#include "detectors/DjitPlus.h"
#include "detectors/EmptyTool.h"
#include "detectors/Eraser.h"
#include "detectors/ThreadLocalFilter.h"
#include "support/Table.h"
#include "trace/RandomTrace.h"

#include <cstdio>
#include <functional>
#include <memory>

using namespace ft;
using namespace ft::bench;

namespace {

std::unique_ptr<Tool> makeFilter(const std::string &Name) {
  if (Name == "TL")
    return std::make_unique<ThreadLocalFilter>();
  if (Name == "Eraser")
    return std::make_unique<Eraser>();
  if (Name == "DJIT+")
    return std::make_unique<DjitPlus>();
  if (Name == "FastTrack") {
    // As a prefilter, FastTrack uses the Section 3 extension (same-epoch
    // hits on read-shared data), matching DJIT+'s 78% same-epoch read
    // coverage so redundant shared reads are filtered too.
    FastTrackOptions Options;
    Options.ExtendedSharedSameEpoch = true;
    return std::make_unique<FastTrack>(Options);
  }
  return nullptr; // NONE
}

std::unique_ptr<Tool> makeChecker(const std::string &Name) {
  if (Name == "Atomizer")
    return std::make_unique<Atomizer>();
  if (Name == "Velodrome")
    return std::make_unique<Velodrome>();
  return std::make_unique<SingleTrack>();
}

double timePipeline(const Trace &T, const std::string &FilterName,
                    const std::string &CheckerName, uint64_t &Forwarded) {
  double Best = 0;
  for (unsigned Rep = 0, Reps = repetitions(); Rep != Reps; ++Rep) {
    auto Checker = makeChecker(CheckerName);
    // NONE uses a pass-through EmptyTool filter so every column pays the
    // identical pipeline plumbing (as all tools share RoadRunner's event
    // chain in the paper).
    auto Filter = makeFilter(FilterName);
    if (!Filter)
      Filter = std::make_unique<EmptyTool>();
    PipelineResult Result = replayFiltered(T, *Filter, *Checker);
    double Seconds = Result.Total.Seconds;
    Forwarded = Result.AccessesForwarded;
    if (Rep == 0 || Seconds < Best)
      Best = Seconds;
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("bench_composition", argc, argv);
  banner("Section 5.2: checker slowdown under prefilters");

  // A mixed transactional workload: random feasible traces with atomic
  // blocks, mostly-disciplined accesses, and a little chaos.
  RandomTraceConfig Config;
  Config.Seed = 2024;
  // 48 threads: the transactional checkers pay O(n) per communication
  // edge, as the paper's do, while the FastTrack prefilter stays O(1).
  Config.NumThreads = 48;
  Config.NumVars = 384;
  Config.NumLocks = 12;
  Config.NumVolatiles = 3;
  Config.OpsPerThread = static_cast<unsigned>(7000 * sizeFactor());
  Config.ChaosProbability = 0.002;
  Config.BarrierProbability = 0.0;
  Config.EmitAtomicBlocks = true;
  Config.MaxAccessBurst = 16;
  Config.ThreadLocalShare = 0.55;
  Config.ReadSharedShare = 0.25;
  Trace T = generateRandomTrace(Config);

  EmptyTool Baseline;
  double EmptySeconds = timedReplay(T, Baseline).Seconds;
  std::printf("Trace: %s events; Empty tool: %.3fs\n\n",
              withCommas(T.size()).c_str(), EmptySeconds);

  const std::vector<std::string> Filters = {"NONE", "TL", "Eraser", "DJIT+",
                                            "FastTrack"};
  const std::vector<std::string> Checkers = {"Atomizer", "Velodrome",
                                             "SingleTrack"};

  Table Out;
  Out.addHeader({"Checker", "NONE", "TL", "ERASER", "DJIT+", "FASTTRACK",
                 "FT-forwarded"});
  for (const std::string &CheckerName : Checkers) {
    std::vector<std::string> Row = {CheckerName};
    uint64_t FtForwarded = 0;
    for (const std::string &FilterName : Filters) {
      if (CheckerName == "Atomizer" && FilterName == "Eraser") {
        Row.push_back("-"); // embeds Eraser already (footnote 7)
        continue;
      }
      uint64_t Forwarded = 0;
      double Seconds = timePipeline(T, FilterName, CheckerName, Forwarded);
      if (FilterName == "FastTrack")
        FtForwarded = Forwarded;
      Row.push_back(slowdown(EmptySeconds > 0 ? Seconds / EmptySeconds : 0));
      Report.metric(CheckerName + "_" + FilterName + "_slowdown",
                    EmptySeconds > 0 ? Seconds / EmptySeconds : 0, "x");
    }
    Row.push_back(withCommas(FtForwarded));
    Out.addRow(Row);
  }
  std::fputs(Out.render().c_str(), stdout);

  std::printf("\nPaper shape: each prefilter reduces checker slowdown; the "
              "FastTrack prefilter gives the largest reduction\n(Velodrome "
              "57.9x -> 11.3x, SingleTrack 104.1x -> 11.7x, Atomizer 57.2x "
              "-> 12.6x).\n");
  return Report.write() ? 0 : 1;
}
