//===--- CheckersTest.cpp - Velodrome, SingleTrack, Atomizer --------------===//

#include "checkers/Atomizer.h"
#include "checkers/SingleTrack.h"
#include "checkers/Velodrome.h"
#include "core/FastTrack.h"
#include "detectors/ThreadLocalFilter.h"
#include "framework/Replay.h"
#include "trace/RandomTrace.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace ft;

namespace {

/// The canonical non-atomic pattern: t0's block reads x, t1 updates x,
/// t0's block writes x back (a lost update / serializability cycle).
Trace lostUpdateTrace() {
  return TraceBuilder()
      .fork(0, 1)
      .atomicBegin(0)
      .rd(0, 0)  // t0 reads x inside its block
      .wr(1, 0)  // t1 writes x: consumes t0's read (edge t0 -> t1)
      .wr(0, 0)  // block writes x: consumes t1's write (edge t1 -> t0)
      .atomicEnd(0)
      .take();
}

/// An atomic block whose interleaved neighbor touches unrelated data.
Trace independentInterleavingTrace() {
  return TraceBuilder()
      .fork(0, 1)
      .atomicBegin(0)
      .rd(0, 0)
      .wr(1, 1) // different variable: no edges into the block
      .wr(0, 0)
      .atomicEnd(0)
      .take();
}

} // namespace

//===----------------------------------------------------------------------===//
// Velodrome.
//===----------------------------------------------------------------------===//

TEST(Velodrome, DetectsLostUpdateCycle) {
  Velodrome Checker;
  replay(lostUpdateTrace(), Checker);
  ASSERT_EQ(Checker.violations().size(), 1u);
  EXPECT_EQ(Checker.violations()[0].Thread, 0u);
  EXPECT_NE(Checker.violations()[0].Detail.find("cycle"), std::string::npos);
}

TEST(Velodrome, IndependentInterleavingIsSerializable) {
  Velodrome Checker;
  replay(independentInterleavingTrace(), Checker);
  EXPECT_TRUE(Checker.violations().empty());
}

TEST(Velodrome, OneWayCommunicationIsSerializable) {
  // The block only *receives* from before its start — serializable (the
  // block can be moved to after t1's write).
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)
                .atomicBegin(0)
                .rd(0, 0)
                .wr(0, 0)
                .atomicEnd(0)
                .take();
  Velodrome Checker;
  replay(T, Checker);
  EXPECT_TRUE(Checker.violations().empty());
}

TEST(Velodrome, OutgoingOnlyCommunicationIsSerializable) {
  // The block only *produces*; the consumer never feeds back.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .atomicBegin(0)
                .wr(0, 0)
                .rd(1, 0)
                .atomicEnd(0)
                .take();
  Velodrome Checker;
  replay(T, Checker);
  EXPECT_TRUE(Checker.violations().empty());
}

TEST(Velodrome, CycleThroughLockEdges) {
  // The block publishes via a lock release, then re-acquires and sees a
  // value produced after its own publication: cycle via lock edges.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .atomicBegin(0)
                .acq(0, 0)
                .wr(0, 0)
                .rel(0, 0) // block publishes
                .acq(1, 0)
                .wr(1, 0)
                .rel(1, 0) // t1 consumed and republished
                .acq(0, 0)
                .rd(0, 0)  // block consumes t1's update: cycle
                .rel(0, 0)
                .atomicEnd(0)
                .take();
  Velodrome Checker;
  replay(T, Checker);
  ASSERT_EQ(Checker.violations().size(), 1u);
}

TEST(Velodrome, ReportsOncePerBlock) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .atomicBegin(0)
                .rd(0, 0)
                .wr(1, 0)
                .wr(0, 0) // violation
                .rd(0, 1)
                .wr(1, 1)
                .wr(0, 1) // would be another, same block
                .atomicEnd(0)
                .take();
  Velodrome Checker;
  replay(T, Checker);
  EXPECT_EQ(Checker.violations().size(), 1u);
}

TEST(Velodrome, SeparateBlocksReportSeparately) {
  TraceBuilder B;
  B.fork(0, 1);
  for (int I = 0; I != 2; ++I) {
    B.atomicBegin(0).rd(0, I).wr(1, I).wr(0, I).atomicEnd(0);
  }
  Velodrome Checker;
  replay(B.take(), Checker);
  EXPECT_EQ(Checker.violations().size(), 2u);
}

TEST(Velodrome, NestedBlocksFlatten) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .atomicBegin(0)
                .atomicBegin(0)
                .rd(0, 0)
                .atomicEnd(0) // inner end must not close the outer block
                .wr(1, 0)
                .wr(0, 0)
                .atomicEnd(0)
                .take();
  Velodrome Checker;
  replay(T, Checker);
  EXPECT_EQ(Checker.violations().size(), 1u);
}

//===----------------------------------------------------------------------===//
// SingleTrack.
//===----------------------------------------------------------------------===//

TEST(SingleTrack, ConcurrentInfluenceIsNondeterministic) {
  // Velodrome accepts one-way communication; SingleTrack rejects it when
  // the producer is concurrent with the block.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .atomicBegin(0)
                .rd(0, 1) // deterministic-region activity
                .wr(1, 0) // concurrent producer
                .rd(0, 0) // block observes concurrent effect
                .atomicEnd(0)
                .take();
  SingleTrack Checker;
  replay(T, Checker);
  ASSERT_EQ(Checker.violations().size(), 1u);
  EXPECT_NE(Checker.violations()[0].Detail.find("nondeterministic"),
            std::string::npos);

  Velodrome V;
  replay(T, V);
  EXPECT_TRUE(V.violations().empty()); // strictly weaker property
}

TEST(SingleTrack, PreOrderedInfluenceIsFine) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)
                .join(0, 1) // ordered before the block starts
                .atomicBegin(0)
                .rd(0, 0)
                .atomicEnd(0)
                .take();
  SingleTrack Checker;
  replay(T, Checker);
  EXPECT_TRUE(Checker.violations().empty());
}

TEST(SingleTrack, ViolationsAreSupersetOfVelodromeOnRandomTraces) {
  for (uint64_t Seed = 1; Seed != 16; ++Seed) {
    RandomTraceConfig Config;
    Config.Seed = Seed;
    Config.NumThreads = 3;
    Config.OpsPerThread = 60;
    Config.ChaosProbability = 0.3;
    Config.EmitAtomicBlocks = true;
    Trace T = generateRandomTrace(Config);

    Velodrome V;
    SingleTrack S;
    replay(T, V);
    replay(T, S);
    EXPECT_GE(S.violations().size(), V.violations().size())
        << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Atomizer.
//===----------------------------------------------------------------------===//

TEST(Atomizer, WellLockedBlockIsReducible) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .lockedWr(1, 0, 0) // make x shared (lock-protected)
                .atomicBegin(0)
                .acq(0, 0)
                .rd(0, 0)
                .wr(0, 0)
                .rel(0, 0)
                .atomicEnd(0)
                .take();
  Atomizer Checker;
  replay(T, Checker);
  EXPECT_TRUE(Checker.violations().empty());
}

TEST(Atomizer, AcquireAfterReleaseViolatesReduction) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .atomicBegin(0)
                .acq(0, 0)
                .rel(0, 0) // left mover: commit
                .acq(0, 1) // right mover after commit: violation
                .rel(0, 1)
                .atomicEnd(0)
                .take();
  Atomizer Checker;
  replay(T, Checker);
  ASSERT_EQ(Checker.violations().size(), 1u);
  EXPECT_NE(Checker.violations()[0].Detail.find("right mover"),
            std::string::npos);
}

TEST(Atomizer, SingleRacyAccessIsTheCommitPoint) {
  // One unprotected shared access inside the block is fine (commit).
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)
                .wr(0, 0) // unprotected sharing: x becomes racy
                .atomicBegin(0)
                .rd(0, 0) // non-mover #1: commit point
                .atomicEnd(0)
                .take();
  Atomizer Checker;
  replay(T, Checker);
  EXPECT_TRUE(Checker.violations().empty());
}

TEST(Atomizer, TwoRacyAccessesViolate) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)
                .wr(0, 0) // x racy
                .wr(1, 1)
                .wr(0, 1) // y racy
                .atomicBegin(0)
                .rd(0, 0) // commit point
                .rd(0, 1) // second non-mover: violation
                .atomicEnd(0)
                .take();
  Atomizer Checker;
  replay(T, Checker);
  ASSERT_EQ(Checker.violations().size(), 1u);
  EXPECT_NE(Checker.violations()[0].Detail.find("non-mover"),
            std::string::npos);
}

TEST(Atomizer, OutsideBlocksNothingIsChecked) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(1, 0)
                .wr(0, 0)
                .rd(0, 0)
                .rd(0, 0)
                .take();
  Atomizer Checker;
  replay(T, Checker);
  EXPECT_TRUE(Checker.violations().empty());
}

//===----------------------------------------------------------------------===//
// Composition: prefilters must not change checker verdicts on the
// accesses they keep, and FastTrack must shrink the stream the most.
//===----------------------------------------------------------------------===//

TEST(Composition, FastTrackPrefilterPreservesLostUpdateViolation) {
  FastTrack Filter;
  Velodrome Checker;
  PipelineResult R = replayFiltered(lostUpdateTrace(), Filter, Checker);
  EXPECT_EQ(Checker.violations().size(), 1u);
  EXPECT_LE(R.AccessesForwarded, R.AccessesSeen);
}

TEST(Composition, FiltersReduceStreamMonotonically) {
  RandomTraceConfig Config;
  Config.Seed = 42;
  Config.NumThreads = 4;
  Config.OpsPerThread = 200;
  Config.ChaosProbability = 0.05;
  Config.EmitAtomicBlocks = true;
  Trace T = generateRandomTrace(Config);

  ThreadLocalFilter Tl;
  Velodrome V1;
  PipelineResult Rtl = replayFiltered(T, Tl, V1);

  FastTrack Ft;
  Velodrome V2;
  PipelineResult Rft = replayFiltered(T, Ft, V2);

  // Both filters materially shrink the access stream. (They are
  // incomparable in general: TL drops *all* thread-local accesses while
  // FastTrack forwards the first access of each epoch, and conversely
  // FastTrack drops same-epoch accesses to shared data that TL keeps.)
  EXPECT_LT(Rtl.AccessesForwarded, Rtl.AccessesSeen);
  EXPECT_LT(Rft.AccessesForwarded, Rft.AccessesSeen);
  // Downstream checker verdicts agree on what matters.
  EXPECT_EQ(V1.violations().size(), V2.violations().size());
}
