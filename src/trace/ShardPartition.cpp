#include "trace/ShardPartition.h"

#include "trace/ReentrancyFilter.h"

using namespace ft;

std::vector<uint32_t> ft::collectSyncOps(const Trace &T,
                                         bool FilterReentrantLocks) {
  std::vector<uint32_t> SyncOps;
  ReentrancyFilter Reentrancy(T.numThreads(), T.numLocks());
  for (size_t I = 0, E = T.size(); I != E; ++I) {
    const Operation &Op = T[I];
    switch (Op.Kind) {
    case OpKind::Read:
    case OpKind::Write:
      break;
    case OpKind::Acquire:
      if (FilterReentrantLocks && !Reentrancy.onAcquire(Op.Thread, Op.Target))
        break;
      SyncOps.push_back(static_cast<uint32_t>(I));
      break;
    case OpKind::Release:
      if (FilterReentrantLocks && !Reentrancy.onRelease(Op.Thread, Op.Target))
        break;
      SyncOps.push_back(static_cast<uint32_t>(I));
      break;
    default:
      SyncOps.push_back(static_cast<uint32_t>(I));
      break;
    }
  }
  return SyncOps;
}
