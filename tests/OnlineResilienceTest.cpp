//===--- OnlineResilienceTest.cpp - overload, stalls, quarantine ----------===//
//
// The tentpole contracts of the overload-resilient runtime, each driven
// deterministically by a FaultPlan:
//
//  - a ring-full storm walks the degradation ladder instead of halting,
//    application threads stay bounded by the park deadline, and the
//    delivered subsequence still replays to identical warnings;
//  - a stalled sequencer is detected, abandoned, and restarted by the
//    watchdog; a second stall also downgrades a ladder rung; exhausting
//    MaxRestarts halts detection (never the application) with every
//    un-merged event counted;
//  - a tool that throws inside a ToolGroup is quarantined while its
//    siblings keep detecting; a tool that throws with no group around it
//    halts the driver with a ToolFault and post-halt drops are counted
//    per thread.
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "detectors/Eraser.h"
#include "framework/Replay.h"
#include "framework/ToolGroup.h"
#include "runtime/FaultPlan.h"
#include "runtime/Instrument.h"
#include "support/Stopwatch.h"
#include "trace/TraceValidator.h"

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <thread>
#include <vector>

using namespace ft;
namespace rt = ft::runtime;

namespace {

void expectSameWarnings(const std::vector<RaceWarning> &Online,
                        const std::vector<RaceWarning> &Offline) {
  ASSERT_EQ(Online.size(), Offline.size());
  for (size_t I = 0; I != Online.size(); ++I) {
    EXPECT_EQ(Online[I].Var, Offline[I].Var) << "warning " << I;
    EXPECT_EQ(Online[I].OpIndex, Offline[I].OpIndex) << "warning " << I;
    EXPECT_EQ(Online[I].CurrentThread, Offline[I].CurrentThread);
    EXPECT_EQ(Online[I].CurrentKind, Offline[I].CurrentKind);
    EXPECT_EQ(Online[I].PriorThread, Offline[I].PriorThread);
    EXPECT_EQ(Online[I].PriorKind, Offline[I].PriorKind);
    EXPECT_EQ(Online[I].Detail, Offline[I].Detail);
  }
}

bool anyDiagContains(const std::vector<Diagnostic> &Diags,
                     const char *Needle) {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Overload: the degradation ladder under a ring-full storm
//===----------------------------------------------------------------------===//

TEST(OnlineResilience, RingStormWalksTheLadderWithoutHalting) {
  // Every delivery costs 2 ms in the sequencer — a consumer far too slow
  // for four producers hammering 16-slot rings. The only sustainable
  // response is to walk the ladder until accesses are shed.
  rt::FaultPlan Faults;
  Faults.DelayFromTicket = 0;
  Faults.DelayToTicket = rt::FaultPlan::None; // the whole session
  Faults.DelayPerDeliveryUs = 2000;

  rt::OnlineOptions Options;
  Options.RingCapacity = 16;
  Options.Faults = &Faults;
  Options.Supervise.TickMs = 5;
  Options.Supervise.MaxParkMs = 5;
  Options.Supervise.PressureTicksToDegrade = 1;
  // A 2 ms/event consumer is slow, not stalled: the watermark keeps
  // moving. Park this test's stall detection out of the way so it
  // isolates the pressure path.
  Options.Supervise.StallDeadlineMs = 60000;

  constexpr unsigned NumThreads = 4;
  constexpr int PerThread = 400;

  FastTrack Detector;
  std::vector<rt::Shared<int>> Vars(NumThreads);
  rt::Shared<int> Racy;
  std::array<uint64_t, NumThreads> MaxWriteNs{};

  rt::Engine Engine(Detector, Options);
  {
    std::vector<rt::Thread> Threads;
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&, T] {
        uint64_t Worst = 0;
        for (int I = 0; I != PerThread; ++I) {
          Stopwatch W;
          FT_WRITE(Vars[T], I);
          if (I % 16 == 0)
            FT_WRITE(Racy, static_cast<int>(T)); // cross-thread races
          Worst = std::max(Worst, W.nanoseconds());
        }
        MaxWriteNs[T] = Worst;
      });
    for (rt::Thread &T : Threads)
      T.join();
  }
  rt::OnlineReport Report = Engine.finish();

  // Overload degraded detection; it did not halt it.
  EXPECT_FALSE(Report.Halted);
  EXPECT_GE(Report.DegradeRung, 1u);
  EXPECT_EQ(Report.Degradations, Report.DegradeRung);
  EXPECT_TRUE(anyDiagContains(Report.Diags, "sustained ring pressure"));
  EXPECT_TRUE(anyDiagContains(Report.Diags, "degraded to rung"));

  // Load actually came off: accesses were shed at the driver (sampling /
  // sync-only) or at the emit side (park deadline) — and counted.
  EXPECT_GT(Report.AccessesShed + Report.DroppedOverload, 0u);
  EXPECT_GT(Report.MaxBacklog, 0u);

  // The emit-side bound held: no application thread blocked for
  // anything near the un-shed backlog's worth of time (which would be
  // multiple seconds at 2 ms/event). The park deadline is 5 ms; allow
  // generous scheduler noise.
  for (uint64_t Worst : MaxWriteNs)
    EXPECT_LT(Worst, 1000u * 1000u * 1000u);

  // The capture is the delivered subsequence: still a feasible trace
  // (modulo rule 4 — shedding may strip every access of a thread while
  // its fork/join spine survives), and an offline replay of it
  // reproduces the online warnings exactly even though degradation
  // remapped and shed accesses mid-stream.
  TraceValidatorOptions VOpts;
  VOpts.RequireThreadOps = false;
  EXPECT_TRUE(isFeasible(Report.Captured, VOpts));
  FastTrack Offline;
  replay(Report.Captured, Offline);
  expectSameWarnings(Detector.warnings(), Offline.warnings());
}

//===----------------------------------------------------------------------===//
// Supervision: stall detection, restart, downgrade, give-up
//===----------------------------------------------------------------------===//

TEST(OnlineResilience, StalledSequencerIsRestartedExactlyOnce) {
  rt::FaultPlan Faults;
  Faults.StallAtTicket = 10;
  Faults.StallsArmed.store(1);

  rt::OnlineOptions Options;
  Options.Faults = &Faults;
  Options.Supervise.TickMs = 5;
  Options.Supervise.StallDeadlineMs = 30;

  FastTrack Detector;
  rt::Shared<int> X;
  rt::Engine Engine(Detector, Options);
  for (int I = 0; I != 100; ++I)
    FT_WRITE(X, I);
  rt::OnlineReport Report = Engine.finish();

  // The watchdog recovered the wedged sequencer; nothing was lost: the
  // producer had already ticketed its events, and the successor resumed
  // from the published watermark.
  EXPECT_FALSE(Report.Halted);
  EXPECT_EQ(Report.SequencerRestarts, 1u);
  EXPECT_EQ(Report.EventsCaptured, 100u);
  EXPECT_EQ(Report.DroppedPostHalt, 0u);
  EXPECT_EQ(Report.DroppedOverload, 0u);
  EXPECT_TRUE(anyDiagContains(Report.Diags, "sequencer stalled"));
  EXPECT_TRUE(anyDiagContains(Report.Diags, "sequencer restarted"));
  // A single stall does not touch the ladder.
  EXPECT_EQ(Report.DegradeRung, 0u);

  FastTrack Offline;
  replay(Report.Captured, Offline);
  expectSameWarnings(Detector.warnings(), Offline.warnings());
}

TEST(OnlineResilience, SecondStallDowngradesALadderRung) {
  rt::FaultPlan Faults;
  Faults.StallAtTicket = 10;
  Faults.StallsArmed.store(2); // the restarted sequencer stalls again

  rt::OnlineOptions Options;
  Options.Faults = &Faults;
  Options.Supervise.TickMs = 5;
  Options.Supervise.StallDeadlineMs = 30;

  FastTrack Detector;
  rt::Shared<int> X;
  rt::Engine Engine(Detector, Options);
  for (int I = 0; I != 100; ++I)
    FT_WRITE(X, I);
  rt::OnlineReport Report = Engine.finish();

  // Two stalls, two restarts — and the second one also concluded the
  // sequencer cannot keep up at full fidelity, so a rung came off.
  EXPECT_FALSE(Report.Halted);
  EXPECT_EQ(Report.SequencerRestarts, 2u);
  EXPECT_GE(Report.DegradeRung, 1u);
  EXPECT_TRUE(anyDiagContains(Report.Diags, "repeated sequencer stall"));
  // Coarse granularity remaps targets but sheds nothing: every event is
  // still delivered and captured.
  EXPECT_EQ(Report.EventsCaptured, 100u);

  FastTrack Offline;
  replay(Report.Captured, Offline);
  expectSameWarnings(Detector.warnings(), Offline.warnings());
}

TEST(OnlineResilience, ExhaustedRestartsHaltDetectionNotTheApplication) {
  rt::FaultPlan Faults;
  Faults.StallAtTicket = 10;
  Faults.StallsArmed.store(100); // wedged for good

  rt::OnlineOptions Options;
  Options.Faults = &Faults;
  Options.Supervise.TickMs = 5;
  Options.Supervise.StallDeadlineMs = 25;
  Options.Supervise.MaxRestarts = 1;

  FastTrack Detector;
  rt::Shared<int> X;
  rt::Engine Engine(Detector, Options);
  for (int I = 0; I != 100; ++I)
    FT_WRITE(X, I);
  rt::OnlineReport Report = Engine.finish(); // must not hang

  // One restart was allowed; the successor wedged too, so the watchdog
  // gave up: detection halted, the application (this test) ran to
  // completion, and every un-merged event is accounted for.
  EXPECT_TRUE(Report.Halted);
  EXPECT_EQ(Report.SequencerRestarts, 1u);
  EXPECT_EQ(Report.EventsCaptured, 10u);
  EXPECT_EQ(Report.DroppedPostHalt, 90u);
  EXPECT_TRUE(anyDiagContains(Report.Diags, "unrecoverable"));
  bool SawError = false;
  for (const Diagnostic &D : Report.Diags)
    SawError |= D.Sev == Severity::Error;
  EXPECT_TRUE(SawError);
}

//===----------------------------------------------------------------------===//
// Tool faults: quarantine in a group, ToolFault halt without one
//===----------------------------------------------------------------------===//

TEST(OnlineResilience, ThrowingMemberIsQuarantinedSiblingsKeepDetecting) {
  FastTrack Main;
  Eraser SiblingInner;
  rt::ThrowAfterTool Bomb(SiblingInner, 3); // detonates on its 4th access
  ToolGroup Group({&Main, &Bomb});

  rt::Shared<int> X;
  rt::Engine Engine(Group);
  FT_WRITE(X, 0);
  {
    rt::Thread A([&] {
      FT_WRITE(X, 1);
      FT_WRITE(X, 2);
    });
    rt::Thread B([&] {
      (void)FT_READ(X);
      (void)FT_READ(X);
    });
    A.join();
    B.join();
  }
  rt::OnlineReport Report = Engine.finish();

  // The group absorbed the throw: the driver saw no exception, so the
  // engine never halted and every event was delivered.
  EXPECT_FALSE(Report.Halted);
  EXPECT_EQ(Report.EventsCaptured, 9u); // wr + 2 forks + 4 accesses + 2 joins
  EXPECT_FALSE(Group.quarantined(0));
  EXPECT_TRUE(Group.quarantined(1));
  EXPECT_EQ(Group.activeMembers(), 1u);
  ASSERT_EQ(Group.diags().size(), 1u);
  EXPECT_EQ(Group.diags()[0].Code, StatusCode::ToolFault);
  EXPECT_NE(Group.diags()[0].Message.find("quarantined"), std::string::npos);

  // The healthy sibling kept detecting: A's writes race B's reads.
  EXPECT_GE(Main.warnings().size(), 1u);
  EXPECT_GE(Report.NumWarnings, 1u);

  // And its verdicts are untouched by the sibling's death: replaying the
  // capture through a fresh FastTrack reproduces them exactly.
  FastTrack Offline;
  replay(Report.Captured, Offline);
  expectSameWarnings(Main.warnings(), Offline.warnings());
}

TEST(OnlineResilience, UncontainedToolFaultHaltsAndCountsEveryDrop) {
  FastTrack Inner;
  rt::ThrowAfterTool Bomb(Inner, 2); // third access throws

  rt::Shared<int> X;
  rt::Engine Engine(Bomb);
  FT_WRITE(X, 0);
  FT_WRITE(X, 1);
  FT_WRITE(X, 2); // detonates in the sequencer; halt lands asynchronously
  for (int I = 0; I != 5000 && !Engine.halted(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(Engine.halted());
  // The application is still running; its events are now dropped and
  // counted at the emit side, on this thread's row.
  for (int I = 0; I != 5; ++I)
    FT_WRITE(X, I);
  rt::OnlineReport Report = Engine.finish();

  EXPECT_TRUE(Report.Halted);
  ASSERT_FALSE(Report.Diags.empty());
  EXPECT_EQ(Report.Diags[0].Code, StatusCode::ToolFault);
  // Exactly the two pre-fault accesses were delivered; the detonating
  // op and everything after it is dropped-and-counted, never silent.
  EXPECT_EQ(Report.EventsCaptured, 2u);
  EXPECT_EQ(Report.DroppedPostHalt, 6u);
  ASSERT_FALSE(Report.PerThreadDrops.empty());
  EXPECT_EQ(Report.PerThreadDrops[0].Thread, 0u);
  EXPECT_GE(Report.PerThreadDrops[0].PostHalt, 5u);
  bool OneShot = false;
  for (const Diagnostic &D : Report.Diags)
    OneShot |= D.Message.find("dropped after detection halted") !=
               std::string::npos;
  EXPECT_TRUE(OneShot);
}

//===----------------------------------------------------------------------===//
// Memory governance: OOM faults, budget soak, governed capture replay
//===----------------------------------------------------------------------===//

TEST(OnlineResilience, DeniedShadowAllocationDegradesOneRungNeverAborts) {
  // The third shadow page allocation is denied mid-stream. The contract:
  // the engine never aborts, detection continues (a real race planted
  // after the fault is still caught), exactly one diagnostic reports the
  // denial, and the degradation ladder steps down exactly one rung — the
  // prepended shadow-summarization rung, not a stream transform.
  rt::FaultPlan Faults;
  Faults.FailShadowPageAllocAt = 2;

  rt::OnlineOptions Options;
  Options.Faults = &Faults;
  Options.MaxVars = 128 * 1024; // paged shadow table
  Options.Degrade.BudgetCheckEveryOps = 256;
  // The sweep saturates the rings by design; park the overload ladder out
  // of the way so the only degradation in the session is the memory rung.
  Options.RingCapacity = 8192;
  Options.Supervise.MaxParkMs = 10000;
  Options.Supervise.PressureTicksToDegrade = 1u << 30;

  // Enough distinct variables that the capture itself spans a paged
  // table (> ShadowEagerVarLimit), so the governed offline replay below
  // exercises the same lifecycle the online table walked.
  constexpr size_t Sweep = 96 * 1024;
  FastTrack Detector;
  std::vector<rt::Shared<int>> Vars(Sweep);
  rt::Engine Engine(Detector, Options);
  for (size_t I = 0; I != Sweep; ++I)
    FT_WRITE(Vars[I], 1); // page 2's fault-in (var 1024) is denied
  {
    rt::Thread A([&] { FT_WRITE(Vars[2000], 2); });
    rt::Thread B([&] { FT_WRITE(Vars[2000], 3); }); // concurrent with A
    A.join();
    B.join();
  }
  rt::OnlineReport Report = Engine.finish();

  EXPECT_FALSE(Report.Halted);
  EXPECT_GE(Report.NumWarnings, 1u);
  EXPECT_GE(Report.PagesSummarized, 1u); // the denied region degraded
  EXPECT_EQ(Report.BudgetTrips, 0u);     // no byte budget in play
  EXPECT_EQ(Report.DegradeRung, 1u);     // exactly one rung: the fold
  EXPECT_TRUE(anyDiagContains(Report.Diags, "shadow allocation denied"));
  EXPECT_TRUE(anyDiagContains(Report.Diags, "degraded to rung"));
  unsigned DenialDiags = 0;
  for (const Diagnostic &D : Report.Diags)
    DenialDiags += D.Message.find("shadow allocation denied") !=
                   std::string::npos;
  EXPECT_EQ(DenialDiags, 1u);

  // A governed replay of the capture — same policy, same fault ordinal —
  // walks the identical table lifecycle and reproduces every warning.
  FastTrackOptions SamePolicy;
  SamePolicy.Memory.Enabled = true;
  SamePolicy.Memory.FailPageAllocAt = 2;
  FastTrack Offline(SamePolicy);
  replay(Report.Captured, Offline);
  expectSameWarnings(Detector.warnings(), Offline.warnings());
  EXPECT_EQ(Offline.shadowGovernorStats().AllocDenied, 1u);
}

TEST(OnlineResilience, BudgetSoakHoldsHighWaterAndKeepsDetecting) {
  // A million-variable-class streaming sweep against a 256 KiB budget the
  // ungoverned table exceeds several times over. The governed session
  // must hold its high-water mark near the budget, report the trips and
  // folds, step the memory rung once, keep finding races planted after
  // the pressure — and stay warning-for-warning replayable.
  rt::OnlineOptions Options;
  Options.MaxVars = 256 * 1024;
  Options.Degrade.Memory.Enabled = true;
  Options.Degrade.Memory.BudgetBytes = 128 * 1024;
  Options.Degrade.Memory.MaintainEveryAccesses = 512;
  Options.Degrade.Memory.ColdAgeTicks = 1;
  Options.Degrade.BudgetCheckEveryOps = 512;
  // As above: only the memory rung may move in this session.
  Options.RingCapacity = 8192;
  Options.Supervise.MaxParkMs = 10000;
  Options.Supervise.PressureTicksToDegrade = 1u << 30;

  constexpr size_t Sweep = 100 * 1024; // ~200 page regions ≈ 800 KiB raw
  FastTrack Detector;
  std::vector<rt::Shared<int>> Vars(Sweep);
  rt::Engine Engine(Detector, Options);
  for (size_t I = 0; I != Sweep; ++I) {
    // Write *and read* every variable: read state makes the swept pages
    // incompressible (lossless packing serves write-only pages), so the
    // budget has to be enforced the hard way — by summarization.
    FT_WRITE(Vars[I], 1);
    (void)FT_READ(Vars[I]);
  }
  {
    rt::Thread A([&] { FT_WRITE(Vars[0], 2); });
    rt::Thread B([&] { FT_WRITE(Vars[0], 3); }); // concurrent with A
    A.join();
    B.join();
  }
  rt::OnlineReport Report = Engine.finish();

  EXPECT_FALSE(Report.Halted);
  EXPECT_GE(Report.BudgetTrips, 1u);
  EXPECT_GT(Report.PagesSummarized, 0u);
  EXPECT_EQ(Report.DegradeRung, 1u); // the memory rung, noted once
  EXPECT_TRUE(anyDiagContains(Report.Diags, "summarized at page granularity"));
  EXPECT_GE(Report.NumWarnings, 1u); // the race survived the pressure
  // The watermark held: within one hysteresis band plus per-generation
  // drift of the budget, against an ungoverned footprint 4x+ larger.
  EXPECT_LE(Report.ShadowBytesHighWater,
            Options.Degrade.Memory.BudgetBytes + 64 * 1024);

  FastTrack Offline; // ungoverned: the unbounded reference
  replay(Report.Captured, Offline);
  expectSameWarnings(Detector.warnings(), Offline.warnings());
  EXPECT_GT(Offline.shadowBytes(), 4 * Report.ShadowBytesHighWater);
}

TEST(OnlineResilience, JoinWhileRingNonemptyStallsSlotReuseNotCorrectness) {
  // A thread is joined while the sequencer — wedged by fault injection —
  // still holds undrained events in its ring. The slot must retire but
  // NOT reincarnate until the ring is empty: the next fork waits on the
  // drain, the watchdog recovers the sequencer, and only then does the
  // successor take the slot. Nothing is lost and nothing is reordered.
  rt::FaultPlan Faults;
  Faults.StallAtTicket = 2; // the first child's second write
  Faults.StallsArmed.store(1);

  rt::OnlineOptions Options;
  Options.Faults = &Faults;
  Options.MaxThreads = 2; // main + one recyclable child slot
  Options.SlotDrainWaitMs = 5000;
  Options.Supervise.TickMs = 5;
  Options.Supervise.StallDeadlineMs = 30;

  FastTrack Detector;
  rt::Shared<int> X;
  rt::Engine Engine(Detector, Options);

  rt::Thread First([&X] {
    for (int I = 0; I != 3; ++I)
      FT_WRITE(X, I); // tickets 1..3; the sequencer wedges merging 2
  });
  ThreadId FirstId = First.id();
  First.join(); // retires the slot with tickets 2..3 still in its ring

  // Only one child slot exists and it is still draining: this fork blocks
  // on the drain until the supervisor abandons and restarts the wedged
  // sequencer, then reincarnates the same slot.
  rt::Thread Second([&X] {
    for (int I = 3; I != 6; ++I)
      FT_WRITE(X, I);
  });
  ThreadId SecondId = Second.id();
  Second.join();
  rt::OnlineReport Report = Engine.finish();

  EXPECT_NE(FirstId, rt::Engine::NoThread);
  EXPECT_EQ(SecondId, FirstId); // same slot, next incarnation
  EXPECT_FALSE(Report.Halted);
  EXPECT_EQ(Report.SequencerRestarts, 1u);
  EXPECT_EQ(Report.SlotsAllocated, 2u);
  EXPECT_EQ(Report.ThreadsRecycled, 1u);
  EXPECT_EQ(Report.ForksRejected, 0u);
  EXPECT_EQ(Report.EventsCaptured, 10u); // 2 × (fork + 3 writes + join)
  EXPECT_EQ(Report.DroppedOverload, 0u);
  EXPECT_EQ(Report.NumWarnings, 0u); // all writes chain through the joins
  EXPECT_TRUE(anyDiagContains(Report.Diags, "sequencer stalled"));
  EXPECT_TRUE(anyDiagContains(Report.Diags, "sequencer restarted"));

  TraceValidatorOptions VOpts;
  VOpts.AllowTidReuse = true;
  EXPECT_TRUE(isFeasible(Report.Captured, VOpts));
  FastTrack Offline;
  replay(Report.Captured, Offline);
  expectSameWarnings(Detector.warnings(), Offline.warnings());
}
