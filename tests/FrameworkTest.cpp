//===--- FrameworkTest.cpp - replay dispatcher, granularity, pipelines ----===//

#include "core/FastTrack.h"
#include "detectors/EmptyTool.h"
#include "detectors/Eraser.h"
#include "detectors/ThreadLocalFilter.h"
#include "framework/Replay.h"
#include "framework/VectorClockToolBase.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace ft;

namespace {

/// Records every event it receives, for dispatch-order assertions.
class RecordingTool : public Tool {
public:
  const char *name() const override { return "Recorder"; }
  bool onRead(ThreadId T, VarId X, size_t) override {
    Log.push_back("rd " + std::to_string(T) + " " + std::to_string(X));
    return true;
  }
  bool onWrite(ThreadId T, VarId X, size_t) override {
    Log.push_back("wr " + std::to_string(T) + " " + std::to_string(X));
    return true;
  }
  void onAcquire(ThreadId T, LockId M, size_t) override {
    Log.push_back("acq " + std::to_string(T) + " " + std::to_string(M));
  }
  void onRelease(ThreadId T, LockId M, size_t) override {
    Log.push_back("rel " + std::to_string(T) + " " + std::to_string(M));
  }
  void onBarrier(const std::vector<ThreadId> &Threads, size_t) override {
    Log.push_back("barrier " + std::to_string(Threads.size()));
  }
  void begin(const ToolContext &Context) override { Ctx = Context; }

  std::vector<std::string> Log;
  ToolContext Ctx;
};

} // namespace

TEST(Replay, DispatchesEventsInOrder) {
  RecordingTool Tool;
  Trace T = TraceBuilder().rd(0, 1).acq(0, 2).wr(0, 1).rel(0, 2).take();
  ReplayResult R = replay(T, Tool);
  std::vector<std::string> Expected = {"rd 0 1", "acq 0 2", "wr 0 1",
                                       "rel 0 2"};
  EXPECT_EQ(Tool.Log, Expected);
  EXPECT_EQ(R.Events, 4u);
}

TEST(Replay, ContextCarriesEntityCounts) {
  RecordingTool Tool;
  Trace T = TraceBuilder().fork(0, 2).wr(2, 9).acq(2, 4).rel(2, 4).take();
  replay(T, Tool);
  EXPECT_EQ(Tool.Ctx.NumThreads, 3u);
  EXPECT_EQ(Tool.Ctx.NumVars, 10u);
  EXPECT_EQ(Tool.Ctx.NumLocks, 5u);
}

TEST(Replay, FiltersReentrantLockPairs) {
  RecordingTool Tool;
  Trace T = TraceBuilder()
                .acq(0, 0)
                .acq(0, 0) // re-entrant: filtered
                .rd(0, 0)
                .rel(0, 0) // inner release: filtered
                .rel(0, 0)
                .take();
  ReplayResult R = replay(T, Tool);
  std::vector<std::string> Expected = {"acq 0 0", "rd 0 0", "rel 0 0"};
  EXPECT_EQ(Tool.Log, Expected);
  EXPECT_EQ(R.Events, 3u);
}

TEST(Replay, ReentrantFilterCanBeDisabled) {
  RecordingTool Tool;
  Trace T = TraceBuilder().acq(0, 0).acq(0, 0).rel(0, 0).rel(0, 0).take();
  ReplayOptions Options;
  Options.FilterReentrantLocks = false;
  ReplayResult R = replay(T, Tool, Options);
  EXPECT_EQ(R.Events, 4u);
}

TEST(Replay, CoarseGranularityMergesVariables) {
  // Default coarse mapping: 8 fields per object. Vars 0..7 -> object 0.
  RecordingTool Tool;
  Trace T = TraceBuilder().wr(0, 0).wr(0, 7).wr(0, 8).take();
  ReplayOptions Options;
  Options.Gran = Granularity::Coarse;
  replay(T, Tool, Options);
  std::vector<std::string> Expected = {"wr 0 0", "wr 0 0", "wr 0 1"};
  EXPECT_EQ(Tool.Log, Expected);
  EXPECT_EQ(Tool.Ctx.NumVars, 2u);
}

TEST(Replay, CoarseGranularityWithExplicitMap) {
  RecordingTool Tool;
  Trace T = TraceBuilder().wr(0, 0).wr(0, 1).wr(0, 2).take();
  std::vector<uint32_t> Map = {5, 5, 6};
  ReplayOptions Options;
  Options.Gran = Granularity::Coarse;
  Options.VarToObject = &Map;
  replay(T, Tool, Options);
  std::vector<std::string> Expected = {"wr 0 5", "wr 0 5", "wr 0 6"};
  EXPECT_EQ(Tool.Log, Expected);
}

TEST(Replay, CoarseGranularityCausesFalseSharingWarnings) {
  // Two distinct fields protected by different locks are race-free under
  // fine granularity but collide under coarse (the Section 4 trade-off).
  Trace T = TraceBuilder()
                .fork(0, 1)
                .lockedWr(0, 0, 0)
                .lockedWr(1, 1, 1)
                .take();
  FastTrack Fine;
  replay(T, Fine);
  EXPECT_EQ(Fine.warnings().size(), 0u);

  FastTrack Coarse;
  ReplayOptions Options;
  Options.Gran = Granularity::Coarse;
  replay(T, Coarse, Options);
  EXPECT_EQ(Coarse.warnings().size(), 1u);
}

TEST(Replay, MeasuresClockStatsDelta) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acq(1, 0)
                .rel(1, 0)
                .join(0, 1)
                .take();
  FastTrack Tool;
  ReplayResult R = replay(T, Tool);
  EXPECT_GT(R.Clocks.totalOps(), 0u); // sync ops did VC work
  EXPECT_EQ(R.NumWarnings, 0u);
  EXPECT_GT(R.ShadowBytes, 0u);
}

TEST(Tool, WarningDeduplicationPerVariable) {
  class AlwaysWarn : public Tool {
  public:
    const char *name() const override { return "AlwaysWarn"; }
    bool onWrite(ThreadId T, VarId X, size_t I) override {
      RaceWarning W;
      W.Var = X;
      W.OpIndex = I;
      W.CurrentThread = T;
      W.CurrentKind = OpKind::Write;
      reportRace(std::move(W));
      return true;
    }
  };
  AlwaysWarn Tool;
  Trace T = TraceBuilder().wr(0, 0).wr(0, 0).wr(0, 1).take();
  replay(T, Tool);
  EXPECT_EQ(Tool.warnings().size(), 2u);
  Tool.clearWarnings();
  EXPECT_TRUE(Tool.warnings().empty());
}

TEST(Warning, ToStringIncludesDetail) {
  RaceWarning W;
  W.Var = 3;
  W.OpIndex = 17;
  W.CurrentThread = 1;
  W.CurrentKind = OpKind::Write;
  W.PriorThread = 0;
  W.PriorKind = OpKind::Write;
  W.Detail = "write-write race";
  std::string S = toString(W);
  EXPECT_NE(S.find("x3"), std::string::npos);
  EXPECT_NE(S.find("op 17"), std::string::npos);
  EXPECT_NE(S.find("thread 1"), std::string::npos);
  EXPECT_NE(S.find("write-write race"), std::string::npos);
}

TEST(Pipeline, FiltersAccessesBeforeDownstream) {
  ThreadLocalFilter Filter;
  RecordingTool Downstream;
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(0, 0) // thread-local: dropped
                .wr(0, 0) // dropped
                .rd(1, 0) // shared now: forwarded
                .rd(0, 0) // forwarded
                .take();
  PipelineResult R = replayFiltered(T, Filter, Downstream);
  EXPECT_EQ(R.AccessesSeen, 4u);
  EXPECT_EQ(R.AccessesForwarded, 2u);
  std::vector<std::string> Expected = {"rd 1 0", "rd 0 0"};
  EXPECT_EQ(Downstream.Log, Expected);
}

TEST(Pipeline, SyncEventsReachBothTools) {
  EmptyTool Filter;
  RecordingTool Downstream;
  Trace T = TraceBuilder().acq(0, 0).rel(0, 0).take();
  replayFiltered(T, Filter, Downstream);
  std::vector<std::string> Expected = {"acq 0 0", "rel 0 0"};
  EXPECT_EQ(Downstream.Log, Expected);
}

TEST(Pipeline, FastTrackPrefilterDropsSameEpochAccesses) {
  FastTrack Filter;
  RecordingTool Downstream;
  TraceBuilder B;
  B.fork(0, 1);
  for (int I = 0; I != 10; ++I)
    B.rd(1, 0); // 1 first-in-epoch + 9 same-epoch
  PipelineResult R = replayFiltered(B.take(), Filter, Downstream);
  EXPECT_EQ(R.AccessesSeen, 10u);
  EXPECT_EQ(R.AccessesForwarded, 1u);
}

TEST(VectorClockToolBase, BarrierJoinsAllMembers) {
  class Probe : public VectorClockToolBase {
  public:
    const char *name() const override { return "Probe"; }
    using VectorClockToolBase::currentClock;
    using VectorClockToolBase::threadClock;
  };
  Probe Tool;
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acq(1, 0)
                .rel(1, 0)
                .barrier({0, 1})
                .take();
  replay(T, Tool);
  // After the barrier both threads' clocks dominate each other's
  // pre-barrier clocks; each was also incremented.
  EXPECT_GE(Tool.threadClock(0).get(1), 2u);
  EXPECT_GE(Tool.threadClock(1).get(0), 2u);
}
