//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epochs: the paper's lightweight happens-before representation.
///
/// An epoch c@t pairs a clock c with the thread t that owned it. Unlike a
/// vector clock, an epoch needs only constant space and supports
/// constant-time copy and comparison. Section 4 of the paper packs an epoch
/// into a 32-bit integer with the thread identifier in the top eight bits
/// and the clock in the bottom twenty-four; a 64-bit variant is provided
/// for programs with more threads or longer executions.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_CLOCK_EPOCH_H
#define FASTTRACK_CLOCK_EPOCH_H

#include "trace/Ids.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace ft {

/// A packed epoch c@t over raw integer type \p RawT with \p TidBits bits of
/// thread identifier in the high bits and the clock below.
///
/// The all-ones raw value is reserved as the READ_SHARED sentinel used by
/// FastTrack's VarState (Section 4, Figure 5); it is never a valid epoch.
template <typename RawT, unsigned TidBits> class BasicEpoch {
public:
  static constexpr unsigned ClockBits = sizeof(RawT) * 8 - TidBits;
  static constexpr RawT MaxClock = (RawT(1) << ClockBits) - 1;
  static constexpr RawT MaxTid = (RawT(1) << TidBits) - 1;

  /// The minimal epoch ⊥e = 0@0. (Not unique as a happens-before bound —
  /// 0@1 is equally minimal — but canonical as a representation.)
  constexpr BasicEpoch() : Raw(0) {}

  /// Builds the epoch c@t. Asserts both components fit the layout.
  static constexpr BasicEpoch make(ThreadId T, RawT Clock) {
    assert(T <= MaxTid && "thread id does not fit epoch layout");
    assert(Clock <= MaxClock && "clock does not fit epoch layout");
    return BasicEpoch((RawT(T) << ClockBits) | Clock);
  }

  /// Reconstructs an epoch from its packed representation.
  static constexpr BasicEpoch fromRaw(RawT Raw) { return BasicEpoch(Raw); }

  /// The READ_SHARED sentinel (not a valid epoch).
  static constexpr BasicEpoch readShared() { return BasicEpoch(~RawT(0)); }

  constexpr ThreadId tid() const {
    return static_cast<ThreadId>(Raw >> ClockBits);
  }
  constexpr RawT clock() const { return Raw & MaxClock; }
  constexpr RawT raw() const { return Raw; }

  constexpr bool isReadShared() const { return Raw == ~RawT(0); }
  constexpr bool isMinimal() const { return clock() == 0; }

  friend constexpr bool operator==(BasicEpoch A, BasicEpoch B) {
    return A.Raw == B.Raw;
  }
  friend constexpr bool operator!=(BasicEpoch A, BasicEpoch B) {
    return A.Raw != B.Raw;
  }

  /// Renders like "4@0" (or "READ_SHARED").
  std::string str() const {
    if (isReadShared())
      return "READ_SHARED";
    return std::to_string(clock()) + "@" + std::to_string(tid());
  }

private:
  explicit constexpr BasicEpoch(RawT Raw) : Raw(Raw) {}
  RawT Raw;
};

/// The paper's default 32-bit epoch: 8-bit tid, 24-bit clock.
using Epoch = BasicEpoch<uint32_t, 8>;

/// The 64-bit variant mentioned in Section 4 for large thread counts or
/// clock values: 16-bit tid, 48-bit clock.
using Epoch64 = BasicEpoch<uint64_t, 16>;

static_assert(sizeof(Epoch) == 4, "Epoch must stay a packed 32-bit value");
static_assert(sizeof(Epoch64) == 8, "Epoch64 must stay a packed 64-bit value");

} // namespace ft

#endif // FASTTRACK_CLOCK_EPOCH_H
