//===--- OnlineDriverTest.cpp - push-mode dispatch vs the replay loop -----===//

#include "core/FastTrack.h"
#include "detectors/Eraser.h"
#include "framework/OnlineDriver.h"
#include "framework/Replay.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace ft;

namespace {

/// Feeds every operation of \p T to a fresh driver over \p Checker.
OnlineDriver pushAll(const Trace &T, Tool &Checker,
                     const ToolContext &Capacity,
                     OnlineDriverOptions Options = {}) {
  OnlineDriver Driver(Checker, Capacity, std::move(Options));
  for (const Operation &Op : T)
    Driver.dispatch(Op);
  Driver.finish();
  return Driver;
}

ToolContext capacity(unsigned Threads = 8, unsigned Vars = 64,
                     unsigned Locks = 8, unsigned Volatiles = 8) {
  ToolContext Context;
  Context.NumThreads = Threads;
  Context.NumVars = Vars;
  Context.NumLocks = Locks;
  Context.NumVolatiles = Volatiles;
  return Context;
}

void expectSameWarnings(const std::vector<RaceWarning> &A,
                        const std::vector<RaceWarning> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Var, B[I].Var);
    EXPECT_EQ(A[I].OpIndex, B[I].OpIndex);
    EXPECT_EQ(A[I].CurrentThread, B[I].CurrentThread);
    EXPECT_EQ(A[I].CurrentKind, B[I].CurrentKind);
    EXPECT_EQ(A[I].PriorThread, B[I].PriorThread);
    EXPECT_EQ(A[I].PriorKind, B[I].PriorKind);
    EXPECT_EQ(A[I].Detail, B[I].Detail);
  }
}

/// A trace exercising races, lock hand-offs, re-entrant locks, volatiles,
/// and fork/join — the op mix both engines must agree on.
Trace mixedTrace() {
  return TraceBuilder()
      .fork(0, 1)
      .fork(0, 2)
      .acq(0, 0)
      .acq(0, 0) // re-entrant: filtered by both engines
      .wr(0, 0)
      .rel(0, 0)
      .rel(0, 0)
      .acq(1, 0)
      .wr(1, 0) // ordered via m0: no race
      .rel(1, 0)
      .wr(2, 1)
      .rd(1, 1) // race on x1
      .volWr(1, 0)
      .volRd(2, 0)
      .wr(2, 2)
      .rd(1, 2) // race on x2 (vrd does not order t1 after t2's write)
      .join(0, 1)
      .join(0, 2)
      .rd(0, 0)
      .take();
}

} // namespace

TEST(OnlineDriver, WarningsMatchOfflineReplayExactly) {
  Trace T = mixedTrace();

  FastTrack Online;
  OnlineDriver Driver = pushAll(T, Online, capacity());

  FastTrack Offline;
  ReplayResult R = replay(T, Offline);

  expectSameWarnings(Online.warnings(), Offline.warnings());
  EXPECT_GT(Online.warnings().size(), 0u);
  EXPECT_EQ(Driver.rawOps(), T.size());
  EXPECT_EQ(Driver.dispatched(), R.Events);
  EXPECT_EQ(Driver.accessesPassed(), R.AccessesPassed);
  EXPECT_FALSE(Driver.halted());
  EXPECT_TRUE(Driver.diags().empty());
}

TEST(OnlineDriver, EraserAgreesWithOfflineReplayToo) {
  // A non-VC tool: the driver makes no assumptions about tool internals.
  Trace T = mixedTrace();
  Eraser Online, Offline;
  pushAll(T, Online, capacity());
  replay(T, Offline);
  expectSameWarnings(Online.warnings(), Offline.warnings());
}

TEST(OnlineDriver, RawIndicesCountFilteredLockEvents) {
  // The warning's OpIndex must name the position in the *raw* stream — a
  // capture replayed offline yields the same index even though the
  // re-entrant pair before the racy access was never dispatched.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acq(0, 0)
                .acq(0, 0)
                .rel(0, 0)
                .wr(0, 3)
                .rel(0, 0)
                .wr(1, 3) // raw op 6; two lock events before it filtered
                .take();
  FastTrack Online;
  OnlineDriver Driver = pushAll(T, Online, capacity());
  ASSERT_EQ(Online.warnings().size(), 1u);
  EXPECT_EQ(Online.warnings()[0].OpIndex, 6u);
  EXPECT_EQ(Driver.rawOps(), 7u);
  EXPECT_EQ(Driver.dispatched(), 5u); // 2 of 7 filtered
}

TEST(OnlineDriver, WarningSinkFiresImmediately) {
  std::vector<std::pair<size_t, size_t>> SinkLog; // (warning op, raw ops)
  FastTrack Checker;
  OnlineDriverOptions Options;
  OnlineDriver *DriverPtr = nullptr;
  Options.WarningSink = [&](const RaceWarning &W) {
    SinkLog.emplace_back(W.OpIndex, DriverPtr->rawOps());
  };
  OnlineDriver Driver(Checker, capacity(), Options);
  DriverPtr = &Driver;

  Trace T = TraceBuilder().fork(0, 1).wr(0, 0).wr(1, 0).wr(0, 1).take();
  for (const Operation &Op : T)
    Driver.dispatch(Op);
  Driver.finish();

  ASSERT_EQ(SinkLog.size(), 1u);
  EXPECT_EQ(SinkLog[0].first, 2u);  // the racy wr(1, x0)
  EXPECT_EQ(SinkLog[0].second, 3u); // sink ran before op 3 was offered
}

TEST(OnlineDriver, OverCapacityVariableHaltsWithDiagnostic) {
  FastTrack Checker;
  OnlineDriver Driver(Checker, capacity(2, 4, 2, 2));
  EXPECT_TRUE(Driver.dispatch(wr(0, 3)));  // at the edge: fine
  EXPECT_FALSE(Driver.dispatch(wr(0, 4))); // over: halt
  EXPECT_TRUE(Driver.halted());
  ASSERT_EQ(Driver.diags().size(), 1u);
  EXPECT_EQ(Driver.diags()[0].Code, StatusCode::ResourceExhausted);
  EXPECT_EQ(Driver.diags()[0].OpIndex, 1u); // rejected op consumed no index
  // Halted drivers reject everything; the raw stream stays replayable.
  EXPECT_FALSE(Driver.dispatch(wr(0, 0)));
  EXPECT_EQ(Driver.rawOps(), 1u);
  Driver.finish();
}

TEST(OnlineDriver, OverCapacityThreadAndLockAndVolatileHalt) {
  {
    FastTrack Checker;
    OnlineDriver Driver(Checker, capacity(2, 4, 2, 2));
    EXPECT_FALSE(Driver.dispatch(wr(2, 0)));
    EXPECT_TRUE(Driver.halted());
  }
  {
    FastTrack Checker;
    OnlineDriver Driver(Checker, capacity(2, 4, 2, 2));
    EXPECT_FALSE(Driver.dispatch(acq(0, 2)));
    EXPECT_TRUE(Driver.halted());
  }
  {
    FastTrack Checker;
    OnlineDriver Driver(Checker, capacity(2, 4, 2, 2));
    EXPECT_FALSE(Driver.dispatch(volRd(0, 2)));
    EXPECT_TRUE(Driver.halted());
  }
  {
    FastTrack Checker;
    OnlineDriver Driver(Checker, capacity(4, 4, 2, 2));
    EXPECT_FALSE(Driver.dispatch(fork(0, 4)));
    EXPECT_TRUE(Driver.halted());
  }
}

TEST(OnlineDriver, BarrierOperationsHalt) {
  FastTrack Checker;
  OnlineDriver Driver(Checker, capacity());
  Operation Barrier(OpKind::Barrier, 0, 0);
  EXPECT_FALSE(Driver.dispatch(Barrier));
  EXPECT_TRUE(Driver.halted());
}

TEST(OnlineDriver, FinishIsIdempotent) {
  FastTrack Checker;
  OnlineDriver Driver(Checker, capacity());
  Driver.dispatch(wr(0, 0));
  Driver.finish();
  Driver.finish(); // second call must not re-run Tool::end()
  EXPECT_EQ(Driver.rawOps(), 1u);
}
