#include "detectors/EmptyTool.h"

// EmptyTool is header-only; this file anchors it in the library.
