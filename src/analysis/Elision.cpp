#include "analysis/Elision.h"

#include "support/Table.h"

using namespace ft;
using namespace ft::analysis;

ElisionPlan ft::analysis::planElision(lang::Program &P,
                                      const AnalysisResult &R,
                                      const ElisionOptions &Options) {
  (void)P; // the stamped nodes belong to P; kept in the signature to
           // make the mutation explicit at call sites
  ElisionPlan Plan;
  Plan.Enabled = Options.Enabled;
  for (const VarClass &Var : R.Vars) {
    switch (Var.V) {
    case Verdict::ThreadLocal:
      ++Plan.VarsThreadLocal;
      break;
    case Verdict::LockConsistent:
      ++Plan.VarsLockConsistent;
      break;
    case Verdict::MustInstrument:
      ++Plan.VarsMustInstrument;
      break;
    }
  }
  for (const SiteReport &Site : R.Sites) {
    ++Plan.SitesTotal;
    bool Elide = Options.Enabled &&
                 ((Site.V == Verdict::ThreadLocal &&
                   Options.ElideThreadLocal) ||
                  (Site.V == Verdict::LockConsistent &&
                   Options.ElideLockConsistent));
    Site.Node->ElideEvent = Elide;
    if (Elide)
      ++Plan.SitesElided;
  }
  return Plan;
}

ElisionPlan ft::analysis::applyElision(lang::Program &P,
                                       const ElisionOptions &Options) {
  AnalysisResult R = analyzeProgram(P);
  return planElision(P, R, Options);
}

std::string ft::analysis::renderAnalysisTable(const AnalysisResult &R) {
  Table T;
  T.addHeader({"site", "fn", "var", "access", "held locks", "verdict",
               "reason"});
  for (const SiteReport &Site : R.Sites) {
    std::string Loc =
        std::to_string(Site.Line) + ":" + std::to_string(Site.Column);
    std::string Locks;
    for (const std::string &L : Site.HeldLocks)
      Locks += Locks.empty() ? L : ("," + L);
    if (Locks.empty())
      Locks = "-";
    std::string Access = Site.IsWrite ? "wr" : "rd";
    if (Site.PreFork)
      Access += " (pre-fork)";
    T.addRow({Loc, Site.Function, Site.Variable, Access, Locks,
              verdictName(Site.V), Site.Reason});
  }
  T.addSeparator();
  uint64_t Elidable = 0;
  for (const VarClass &Var : R.Vars)
    if (Var.V != Verdict::MustInstrument)
      ++Elidable;
  T.addRow({"", "", "", "", "",
            std::to_string(Elidable) + "/" + std::to_string(R.Vars.size()),
            "variables elidable"});
  return T.render();
}

std::string ft::analysis::toString(const ElisionPlan &Plan) {
  if (!Plan.Enabled)
    return "elision: disabled (--no-elide), all " +
           std::to_string(Plan.SitesTotal) + " sites instrumented";
  return "elision: " + std::to_string(Plan.SitesElided) + "/" +
         std::to_string(Plan.SitesTotal) + " sites elided (" +
         std::to_string(Plan.VarsThreadLocal) + " vars thread-local, " +
         std::to_string(Plan.VarsLockConsistent) + " lock-consistent, " +
         std::to_string(Plan.VarsMustInstrument) + " must-instrument)";
}
