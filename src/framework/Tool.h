//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Tool interface: the analogue of a RoadRunner back-end checker.
///
/// Every analysis in this repository (the six race detectors of the paper
/// plus the downstream atomicity/determinism checkers) implements Tool and
/// consumes one totally-ordered event stream produced by replay(). That
/// mirrors the paper's methodology: "all tools are implemented on top of
/// the same framework ... providing a true apples-to-apples comparison."
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_TOOL_H
#define FASTTRACK_FRAMEWORK_TOOL_H

#include "framework/Warning.h"
#include "shadow/ShadowPolicy.h"
#include "trace/Trace.h"

#include <vector>

namespace ft {

/// Static facts about the trace a tool is about to process, letting tools
/// pre-size their shadow state (the numbers already reflect any
/// granularity remapping applied by replay()).
struct ToolContext {
  unsigned NumThreads = 1;
  unsigned NumVars = 0;
  unsigned NumLocks = 0;
  unsigned NumVolatiles = 0;
};

/// Base class for all dynamic analyses.
///
/// Event handlers are virtual and default to no-ops. The read/write
/// handlers return a *pass* flag used when the tool acts as a prefilter in
/// a composed pipeline (Section 5.2): `true` means "this access is
/// interesting — forward it downstream"; `false` means the access was
/// proven boring/race-free by a fast path and can be filtered out. Tools
/// that are not filters simply return true.
class Tool {
public:
  virtual ~Tool();

  /// Stable tool name, e.g. "FastTrack".
  virtual const char *name() const = 0;

  /// Called once before the first event.
  virtual void begin(const ToolContext &Context);

  /// Called once after the last event.
  virtual void end();

  /// rd(t, x). \returns pass flag (see class comment).
  virtual bool onRead(ThreadId T, VarId X, size_t OpIndex);

  /// wr(t, x). \returns pass flag.
  virtual bool onWrite(ThreadId T, VarId X, size_t OpIndex);

  virtual void onAcquire(ThreadId T, LockId M, size_t OpIndex);
  virtual void onRelease(ThreadId T, LockId M, size_t OpIndex);
  virtual void onFork(ThreadId T, ThreadId U, size_t OpIndex);
  virtual void onJoin(ThreadId T, ThreadId U, size_t OpIndex);
  virtual void onVolatileRead(ThreadId T, VolatileId V, size_t OpIndex);
  virtual void onVolatileWrite(ThreadId T, VolatileId V, size_t OpIndex);
  virtual void onBarrier(const std::vector<ThreadId> &Threads,
                         size_t OpIndex);
  virtual void onAtomicBegin(ThreadId T, size_t OpIndex);
  virtual void onAtomicEnd(ThreadId T, size_t OpIndex);

  /// Bytes of shadow state currently held, for Table 3's memory column.
  virtual size_t shadowBytes() const;

  /// Offers a shadow-memory governance policy (temperature tracking,
  /// cold-page compression, watermark shedding — shadow/ShadowPolicy.h)
  /// to the tool, before begin(). \returns true when the tool will
  /// govern its shadow state accordingly; the default declines, and the
  /// caller (framework/OnlineDriver.h) falls back to ladder-only
  /// budgeting.
  virtual bool configureShadowPolicy(const ShadowMemoryPolicy &Policy);

  /// Governance telemetry accumulated since begin(). Tools that decline
  /// configureShadowPolicy report zeros.
  virtual ShadowGovernorStats shadowGovernorStats() const;

  /// Warnings reported so far (deduplicated to one per variable).
  const std::vector<RaceWarning> &warnings() const { return Warnings; }

  /// Drops accumulated warnings and the per-variable dedup set.
  void clearWarnings();

  /// Merges externally collected warnings through the one-warning-per-
  /// variable policy, in the given order. ParallelReplay uses this to
  /// install the shard clones' warnings (sorted back into trace order)
  /// into the primary tool. \returns the number recorded.
  size_t adoptWarnings(const std::vector<RaceWarning> &Merged);

protected:
  /// Records \p W unless a warning for the same variable already exists.
  /// \returns true when the warning was recorded.
  bool reportRace(RaceWarning W);

  /// Returns true if a warning for \p X has already been recorded.
  bool alreadyWarned(VarId X) const;

private:
  std::vector<RaceWarning> Warnings;
  std::vector<bool> WarnedVars; // indexed by VarId, grown on demand
};

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_TOOL_H
