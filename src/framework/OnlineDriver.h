//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online dispatch entry point: the push-mode sibling of replay().
///
/// replay() pulls events out of an immutable Trace; an OnlineDriver is
/// handed events one at a time, in the total order they were observed, by
/// a producer that does not yet know how the execution ends — the
/// in-process runtime of src/runtime, a streaming ingester, or a test.
/// The driver applies the exact per-event semantics of the serial replay
/// loop (re-entrant lock filtering, raw-stream op indices) so that a tool
/// driven online reports byte-for-byte the warnings an offline replay of
/// the same stream would: the online/offline equivalence contract the
/// runtime's flight recorder depends on.
///
/// Because events arrive from a live program, entity counts cannot be
/// known up front. The driver is constructed with a *capacity*
/// ToolContext — the tool pre-sizes its shadow state from it exactly as
/// it would for a trace — and every incoming operation is bounds-checked
/// against that capacity.
///
/// Unlike the original (PR 3) driver, an over-capacity variable or a
/// shadow-memory budget breach no longer kills detection outright: the
/// driver carries an *overload degradation ladder* (the online analogue
/// of framework/ResourceGovernor.h, following SmartTrack's philosophy of
/// degrading work per event rather than giving up):
///
///   Full → CoarseGranularity(8) → CoarseGranularity(64)
///        → CoarseGranularity(512) → AccessSampling(1-in-8) → SyncOnly
///
/// Coarse rungs fold variable ids through a widening divisor (the
/// GranularityMap mapping of replay()); sampling delivers a deterministic
/// 1-in-N subset of accesses; SyncOnly drops all accesses. Sync events
/// (acquire/release/fork/join/volatiles) are *never* degraded, so the
/// happens-before spine stays exact on every rung. Each transition emits
/// a Warning diagnostic anchored to the raw op index. Halting remains
/// only for the failures no rung can absorb: thread/lock/volatile
/// capacity breaches, barriers, and tools that throw mid-dispatch.
///
/// The equivalence contract survives degradation because the transform is
/// applied *before* the flight recorder sees the op: offer() remaps the
/// operation in place and tells the caller whether it is part of the
/// delivered stream. Replaying a degraded capture offline therefore
/// reproduces the online warnings byte for byte — the capture *is* the
/// delivered subsequence.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_ONLINEDRIVER_H
#define FASTTRACK_FRAMEWORK_ONLINEDRIVER_H

#include "framework/Degrade.h"
#include "framework/Tool.h"
#include "support/Status.h"
#include "trace/ReentrancyFilter.h"

#include <functional>
#include <vector>

namespace ft {

namespace runtime {
struct OnlineEvent;
} // namespace runtime

/// Which half (or both) of the offer() pipeline a driver instance runs.
/// The sharded engine splits the single-sequencer driver into one
/// admission-side instance on the router thread and one dispatch-side
/// instance per shard; Full is the classic single-sequencer combination
/// and the default everywhere else.
enum class DriverRole : uint8_t {
  /// Admission + dispatch in one instance (the single-sequencer engine,
  /// streaming ingesters, tests).
  Full,
  /// Admission only: degradation-ladder transform, capacity checks,
  /// budget probes, re-entrant lock filtering, and raw-index assignment —
  /// but the tool is never called. The router runs this role so the
  /// capture and raw indices are decided exactly as a Full driver would
  /// decide them, then routes Delivered events to shards.
  AdmissionOnly,
  /// Dispatch only: events arrive pre-admitted (already transformed,
  /// filtered, and carrying their raw index in OnlineEvent::Seq) via
  /// dispatchRun(). Shard workers run this role with the ladder disabled
  /// and the re-entrant filter off — admission already applied both.
  DispatchOnly,
};

/// Options controlling one online dispatch session.
struct OnlineDriverOptions {
  /// Sentinel for the fault-injection knob below.
  static constexpr uint64_t NoFault = ~0ull;

  /// Pipeline half this instance runs (see DriverRole).
  DriverRole Role = DriverRole::Full;

  /// Overrides the shadow-size source for budget probes. A Full driver
  /// probes its own Tool::shadowBytes(); an AdmissionOnly driver's tool
  /// holds no shadow state (the shard clones do), so the sharded engine
  /// installs a functor summing the sizes the shard workers publish.
  std::function<uint64_t()> ShadowBytes;

  /// Same override for governance telemetry: an AdmissionOnly driver's
  /// tool governs nothing (the shard clones do), so the sharded engine
  /// installs a functor summing the trip/denial counters the shard
  /// workers publish. Empty = poll Tool::shadowGovernorStats().
  std::function<ShadowGovernorStats()> GovernorStats;

  /// Strip redundant re-entrant lock acquires/releases before dispatch,
  /// as the serial replay loop does. Keep this in sync with the replay
  /// options used to re-check a captured stream offline.
  bool FilterReentrantLocks = true;

  /// Invoked once per new warning, immediately after the event that
  /// raised it was dispatched — the "report races as they happen" sink.
  /// Called from whichever thread calls dispatch(); may be empty.
  std::function<void(const RaceWarning &)> WarningSink;

  /// Overload-degradation policy (see DegradePolicy).
  DegradePolicy Degrade;

  /// Fault injection: the first budget probe at or after this raw op
  /// index reports a breach regardless of actual shadow size (the
  /// runtime's FaultPlan "allocation failure" hook). NoFault disables.
  uint64_t ForceBudgetBreachAtRawOp = NoFault;
};

/// Drives one Tool from a live, totally-ordered event stream.
///
/// Not thread-safe: exactly one thread (the runtime's sequencer) may call
/// offer()/dispatch()/finish(). Concurrency belongs to the producers
/// upstream; by the time events reach the driver they are already merged.
class OnlineDriver {
public:
  /// What happened to one offered operation.
  enum class DispatchOutcome : uint8_t {
    /// Part of the delivered stream: dispatched to the tool, or filtered
    /// by the re-entrant lock filter (which still consumes a raw index).
    /// A flight recorder must capture the operation as offer() left it
    /// (coarse rungs remap the variable id in place).
    Delivered,
    /// Shed by a degraded rung (sampling or SyncOnly). Not part of the
    /// delivered stream; must not be captured.
    Dropped,
    /// The driver is halted — by this operation or an earlier one.
    /// Nothing was consumed; must not be captured.
    Rejected,
  };

  /// Calls Checker.begin(Capacity); the capacity bounds the entity ids
  /// dispatch() will accept (tools index shadow state without checks).
  OnlineDriver(Tool &Checker, const ToolContext &Capacity,
               OnlineDriverOptions Options = OnlineDriverOptions());

  /// Feeds the next operation of the merged stream, applying the current
  /// degradation rung first: \p Op's variable id is remapped in place on
  /// coarse rungs, so on Delivered the caller captures \p Op as returned.
  /// Every Delivered operation consumes one raw op index — including
  /// re-entrant lock events the filter strips — so indices agree with an
  /// offline replay of the captured stream. Barrier operations cannot be
  /// dispatched online (their thread sets live in a Trace side table)
  /// and halt the driver. A tool that throws mid-dispatch halts the
  /// driver with a ToolFault diagnostic instead of unwinding into the
  /// sequencer (compose tools through ToolGroup to quarantine the
  /// thrower and keep its siblings detecting).
  DispatchOutcome offer(Operation &Op);

  /// Compatibility shim over offer(): true iff the operation was
  /// Delivered. Callers that capture the stream should use offer() to
  /// distinguish Dropped from Rejected and to see the remapped id.
  bool dispatch(const Operation &Op) {
    Operation Copy = Op;
    return offer(Copy) == DispatchOutcome::Delivered;
  }

  /// AdmissionOnly: true iff the most recent Delivered offer() was
  /// consumed by the re-entrant lock filter — it owns a raw index and
  /// belongs in the capture, but must NOT be routed to shards (shard
  /// drivers run with the filter off; routing it would double-apply the
  /// lock semantics the filter stripped).
  bool lastAdmittedFiltered() const { return LastFiltered; }

  /// AdmissionOnly batched admission: the router-side complement of
  /// dispatchRun(). Admits \p N access events (all Read/Write — the caller
  /// guarantees it) emitted by thread \p Thread in one call when nothing
  /// per-event can fire: the driver is un-halted, at the Full rung (no
  /// transforms), every target is in capacity, and no budget probe falls
  /// inside the run. Consumes N consecutive raw indices (the first is
  /// rawOps() - N after the call) and counts N dispatched events — exactly
  /// the state N Delivered offer() calls would leave. Returns false,
  /// admitting nothing, when any condition fails; the caller falls back to
  /// per-event offer(), which re-runs the checks and produces the exact
  /// diagnostics and degradations.
  bool admitAccessRun(ThreadId Thread, const runtime::OnlineEvent *Run,
                      size_t N);

  /// DispatchOnly batched dispatch: feeds \p N pre-admitted events to the
  /// tool, hoisting the per-event halt/capacity/rung checks offer() pays
  /// out of the loop (they already ran on the admission side). Access
  /// events take a devirtualized per-run fast path when the tool's
  /// concrete type registered one via FT_REGISTER_FAST_DISPATCH; sync
  /// events dispatch virtually one at a time. Each event's Seq is the raw
  /// op index admission assigned, so warnings carry single-sequencer
  /// indices. Returns false when a throwing tool halted the driver
  /// mid-run (the remainder of the run is discarded).
  bool dispatchRun(const runtime::OnlineEvent *Run, size_t N);

  /// Steps one rung down the ladder on behalf of an external overload
  /// signal (the runtime's supervisor: sustained ring pressure, repeated
  /// sequencer stalls). \returns false when degradation is pinned off or
  /// the ladder is exhausted; the caller decides what to do then — the
  /// driver does not halt, because shedding continues at the final rung.
  bool requestStepDown(StatusCode Code, const std::string &Reason);

  /// Calls Checker.end() and flushes the warning sink. A throwing end()
  /// is absorbed into a ToolFault diagnostic. Idempotent.
  void finish();

  /// True once an unrecoverable operation stopped the analysis. The
  /// application may keep running; events are dropped.
  bool halted() const { return Halted; }

  /// Raw op indices consumed (== the length of a faithful capture).
  uint64_t rawOps() const { return Raw; }

  /// Events actually forwarded to the tool (post lock filtering).
  uint64_t dispatched() const { return Dispatched; }

  /// Accesses whose handler returned the pass flag.
  uint64_t accessesPassed() const { return AccessesPassed; }

  /// Accesses shed by sampling/SyncOnly rungs (not in the capture).
  uint64_t accessesDropped() const { return AccessesDropped; }

  /// Current ladder position: 0 = Full, N = ladder step N-1 applied.
  unsigned rung() const { return Rung; }

  /// Degradation transitions taken (== diagnostics emitted for them).
  unsigned degradations() const { return Degradations; }

  /// Diagnostics describing halts and degradations, anchored to the raw
  /// op index at which they happened.
  const std::vector<Diagnostic> &diags() const { return Diags; }

  const ToolContext &capacity() const { return Capacity; }

private:
  void halt(std::string Message);
  void halt(StatusCode Code, std::string Message);
  bool stepDown(StatusCode Code, const std::string &Reason);
  void applyRung();
  void probeBudget();
  void drainWarnings();

  Tool &Checker;
  ToolContext Capacity;
  OnlineDriverOptions Options;
  ReentrancyFilter Reentrancy;
  /// Devirtualized access-run loop for Checker's exact dynamic type, or
  /// nullptr (virtual fallback). Resolved once at construction.
  uint64_t (*FastRun)(Tool &, const runtime::OnlineEvent *, size_t) = nullptr;
  std::vector<Diagnostic> Diags;
  uint64_t Raw = 0;
  uint64_t Dispatched = 0;
  uint64_t AccessesPassed = 0;
  uint64_t AccessesDropped = 0;
  uint64_t AccessCounter = 0; ///< Accesses seen by the sampling gate.
  uint64_t NextProbe = ~0ull; ///< Raw index of the next budget probe.
  size_t SinkCursor = 0;
  unsigned Rung = 0;
  unsigned Degradations = 0;
  // Effective configuration at the current rung (derived by applyRung).
  uint32_t Divisor = 1;
  unsigned SampleEvery = 1;
  bool SyncOnlyMode = false;
  bool LastFiltered = false;
  /// The tool accepted configureShadowPolicy: budget probes also poll its
  /// governor telemetry to surface the memory-driven rung.
  bool MemoryGoverned = false;
  /// The ShadowSummarize transition was already taken/noted (the table
  /// governs itself continuously; the ladder records it exactly once).
  bool MemoryRungNoted = false;
  bool Halted = false;
  bool Finished = false;
};

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_ONLINEDRIVER_H
