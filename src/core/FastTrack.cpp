#include "core/FastTrack.h"

#include "framework/FastDispatch.h"
#include "framework/Replay.h"

#include "support/ByteStream.h"

using namespace ft;

namespace {

/// Checkpoint shadow-section format (see snapshotShadow below).
///
/// v1 (legacy, pre-paged-shadow): u32 variable count, then a dense
/// record per variable. Kept readable so old images resume on the paged
/// layout.
///
/// v2: the u32 slot holds kShadowFormatV2 (never a valid v1 count — it
/// would mean 2^32-1 variables), then a u64 variable count (million-
/// variable-plus tables snapshot safely), then one record per *page*
/// with a compact kind byte, so image size is proportional to touched
/// pages — and within them to inflated state — not to NumVars.
constexpr uint32_t kShadowFormatV2 = 0xffffffffu;

/// Page kinds, chosen purely from logical content so a snapshot is a
/// function of shadow *state*, never of fault-in history — that is what
/// keeps resumed and uninterrupted runs byte-identical.
enum ShadowPageKind : uint8_t {
  kPageAbsent = 0,    ///< Every slot ⊥ (or the page was never faulted).
  kPageWriteOnly = 1, ///< Some W set, every R still ⊥: W array only.
  kPageDense = 2,     ///< Full W/R records (read VCs for inflated slots).
  kPageSummarized = 3, ///< Page folded to one page-granularity summary
                       ///< slot by governed pressure shedding: W then R,
                       ///< each either a raw epoch or the READ_SHARED
                       ///< sentinel followed by a clock payload (a
                       ///< summary's W may be a multi-writer join).
};

} // namespace

template <typename EpochT>
void BasicFastTrack<EpochT>::begin(const ToolContext &Context) {
  // The top tid is the shadow table's READ_SHARED handle tag, so the
  // usable range is one short of the raw epoch packing.
  assert(Context.NumThreads <= EpochT::MaxTid &&
         "thread count exceeds this epoch layout; use FastTrack64");
  VectorClockToolBase::begin(Context);
  Shadow.setPolicy(Options.Memory);
  Shadow.reset(Context.NumVars);
  // Governance ticks count dispatched accesses (never wall clock), so a
  // governed capture replays through identical table transitions.
  MaintainCountdown =
      Shadow.governed() ? Options.Memory.MaintainEveryAccesses : 0;
  Rules = FastTrackRuleStats();
}

template <typename EpochT>
void BasicFastTrack<EpochT>::reportAccessRace(ThreadId T, VarId X,
                                              size_t OpIndex, OpKind Kind,
                                              ThreadId PriorThread,
                                              OpKind PriorKind,
                                              const char *Detail) {
  RaceWarning W;
  W.Var = X;
  W.OpIndex = OpIndex;
  W.CurrentThread = T;
  W.CurrentKind = Kind;
  W.PriorThread = PriorThread;
  W.PriorKind = PriorKind;
  W.Detail = Detail;
  reportRace(std::move(W));
}

template <typename EpochT>
ThreadId BasicFastTrack<EpochT>::concurrentReader(const VectorClock &Rvc,
                                                  ThreadId T) const {
  const VectorClock &Ct = threadClock(T);
  for (ThreadId U = 0; U != Rvc.size(); ++U)
    if (Rvc.get(U) > Ct.get(U))
      return U;
  return UnknownThread;
}

template <typename EpochT>
bool BasicFastTrack<EpochT>::onRead(ThreadId T, VarId X, size_t OpIndex) {
  // The governance tick runs before the slot reference is taken, so page
  // compression/shedding never runs under an in-flight rule.
  if (__builtin_expect(MaintainCountdown != 0, 0) &&
      --MaintainCountdown == 0) {
    MaintainCountdown = Options.Memory.MaintainEveryAccesses;
    Shadow.maintain();
  }
  Slot &S = Shadow.slot(X);
  EpochT Et = epochOf(T);

  // [FT READ SAME EPOCH]: single epoch comparison on the hot W/R pair,
  // 63.4 % of reads. A tagged handle never equals a real epoch (its tid
  // is the reserved tag), so no extra branch distinguishes them here.
  if (Options.SameEpochFastPath && S.R == Et) {
    ++Rules.ReadSameEpoch;
    return false;
  }

  bool Shared = ShadowTable<EpochT>::isInflated(S.R);

  // Optional extension (Section 3): same-epoch hit on read-shared data.
  if (Options.ExtendedSharedSameEpoch && Shared &&
      Shadow.clockFor(S.R).get(T) == Et.clock()) {
    ++Rules.ReadSameEpoch;
    return false;
  }

  const VectorClock &Ct = threadClock(T);

  // Write-read race check: Wx ≼ Ct, O(1), same cache line as the R just
  // read. A summarized region's W may carry an inflated multi-writer
  // join ("governed tables may hand out an inflated W" —
  // shadow/ShadowTable.h); the check widens to a clock comparison there.
  if (__builtin_expect(ShadowTable<EpochT>::isInflated(S.W), 0)) {
    const VectorClock &Wvc = Shadow.clockFor(S.W);
    if (!Wvc.leq(Ct))
      reportAccessRace(T, X, OpIndex, OpKind::Read, concurrentReader(Wvc, T),
                       OpKind::Write, "write-read race");
  } else if (!Ct.epochLeq(S.W)) {
    reportAccessRace(T, X, OpIndex, OpKind::Read, S.W.tid(), OpKind::Write,
                     "write-read race");
  }

  if (Shared) {
    // [FT READ SHARED]: O(1) update of this thread's side-store entry.
    ++Rules.ReadShared;
    Shadow.clockFor(S.R).set(T, Ct.get(T));
    return true;
  }

  if (Options.EpochReads && Ct.epochLeq(S.R)) {
    // [FT READ EXCLUSIVE]: the previous read happens-before this one, so
    // the epoch representation still suffices.
    ++Rules.ReadExclusive;
    S.R = Et;
    return true;
  }

  // [FT READ SHARE] (SLOW PATH): concurrent reads — inflate to a vector
  // clock holding both read epochs. inflate() recycles a deflated
  // handle's buffer when one is parked (zeroed: entries from an earlier
  // read-shared phase predate the write that deflated it and would cause
  // false alarms if kept); only the handle moves into R.
  ++Rules.ReadShare;
  EpochT Prior = S.R;
  EpochT Handle = Shadow.inflate();
  VectorClock &Rvc = Shadow.clockFor(Handle);
  Rvc.set(Prior.tid(), static_cast<ClockValue>(Prior.clock()));
  Rvc.set(T, Ct.get(T));
  S.R = Handle;
  return true;
}

template <typename EpochT>
bool BasicFastTrack<EpochT>::onWrite(ThreadId T, VarId X, size_t OpIndex) {
  if (__builtin_expect(MaintainCountdown != 0, 0) &&
      --MaintainCountdown == 0) {
    MaintainCountdown = Options.Memory.MaintainEveryAccesses;
    Shadow.maintain();
  }
  Slot &S = Shadow.slot(X);
  EpochT Et = epochOf(T);

  // [FT WRITE SAME EPOCH]: 71.0 % of writes. A summarized region's
  // inflated W never equals a real epoch (its tid is the reserved tag),
  // so the fast path needs no extra branch.
  if (Options.SameEpochFastPath && S.W == Et) {
    ++Rules.WriteSameEpoch;
    return false;
  }

  const VectorClock &Ct = threadClock(T);

  // Write-write race check: Wx ≼ Ct, O(1). All prior writes are totally
  // ordered (absent detected races), so the last write epoch suffices —
  // except on a summarized region, whose W may be the inflated per-tid
  // join of several cold writers (full clock comparison).
  if (__builtin_expect(ShadowTable<EpochT>::isInflated(S.W), 0)) {
    const VectorClock &Wvc = Shadow.clockFor(S.W);
    if (!Wvc.leq(Ct))
      reportAccessRace(T, X, OpIndex, OpKind::Write, concurrentReader(Wvc, T),
                       OpKind::Write, "write-write race");
  } else if (!Ct.epochLeq(S.W)) {
    reportAccessRace(T, X, OpIndex, OpKind::Write, S.W.tid(), OpKind::Write,
                     "write-write race");
  }

  if (!ShadowTable<EpochT>::isInflated(S.R)) {
    // [FT WRITE EXCLUSIVE]: read-write check against the read epoch, O(1).
    ++Rules.WriteExclusive;
    if (!Ct.epochLeq(S.R))
      reportAccessRace(T, X, OpIndex, OpKind::Write, S.R.tid(), OpKind::Read,
                       "read-write race");
  } else {
    // [FT WRITE SHARED] (SLOW PATH): full Rvc ⊑ Ct comparison, then the
    // read state deflates back to an epoch — later accesses cannot race
    // with the discarded reads without also racing with this write. The
    // handle parks on the free list; its clock buffer is recycled by the
    // next inflation anywhere in the table.
    ++Rules.WriteShared;
    const VectorClock &Rvc = Shadow.clockFor(S.R);
    if (!Rvc.leq(Ct))
      reportAccessRace(T, X, OpIndex, OpKind::Write, concurrentReader(Rvc, T),
                       OpKind::Read, "read-write race");
    Shadow.deflate(S.R);
    S.R = EpochT();
  }
  // A summarized region's multi-writer W join is subsumed by this write
  // exactly like an exclusive epoch (the ≼ check above already compared
  // the full join); its side-store handle parks for reuse.
  if (__builtin_expect(ShadowTable<EpochT>::isInflated(S.W), 0))
    Shadow.deflate(S.W);
  S.W = Et;
  return true;
}

template <typename EpochT>
size_t BasicFastTrack<EpochT>::shadowBytes() const {
  // The table walks its side store, so heap-spilled read VCs (ClockArena
  // blocks behind wide clocks) are charged against memory budgets too.
  return VectorClockToolBase::shadowBytes() + Shadow.memoryBytes();
}

template <typename EpochT>
uint64_t BasicFastTrack<EpochT>::inflatedReadStates() const {
  return Shadow.inflatedStates();
}

template <typename EpochT>
void BasicFastTrack<EpochT>::snapshotShadow(ByteWriter &Writer) const {
  using Table = ShadowTable<EpochT>;
  // Renumber side-store handles into page order first, so restore
  // re-assigns them sequentially. Internal renumbering only — images
  // never encode handles — so this changes no serialized byte.
  if (Options.SortSideStoreOnSnapshot)
    const_cast<Table &>(Shadow).compactSideStore();
  snapshotClocks(Writer);
  Writer.u32(kShadowFormatV2);
  Writer.u64(Shadow.numVars());
  // Epochs-or-sentinel encoding shared by dense records and summary
  // slots: an inflated value serializes as the canonical READ_SHARED
  // sentinel plus its clock payload, so images never depend on
  // side-store numbering and restore may re-assign handles freely
  // without breaking byte-identical resume.
  auto writeEpochOrClock = [&](EpochT E) {
    if (Table::isInflated(E)) {
      Writer.u64(static_cast<uint64_t>(EpochT::readShared().raw()));
      writeClock(Writer, Shadow.clockFor(E));
    } else {
      Writer.u64(static_cast<uint64_t>(E.raw()));
    }
  };
  std::vector<typename Table::Slot> Buf(Table::PageSize);
  for (size_t PI = 0, E = Shadow.numPages(); PI != E; ++PI) {
    const uint32_t Used = Shadow.slotsInPage(PI);

    if (Shadow.pageStateAt(PI) == ShadowPageState::Summarized) {
      const typename Table::Slot &Sum = Shadow.summaryAt(PI);
      Writer.u8(kPageSummarized);
      writeEpochOrClock(Sum.W);
      writeEpochOrClock(Sum.R);
      continue;
    }

    // Classify from logical content only: a faulted page whose slots are
    // all still ⊥ serializes as absent, identically to one never touched,
    // and a compressed page expands into Buf so its record is
    // byte-identical to its resident twin's.
    uint8_t Kind = kPageAbsent;
    if (Shadow.readPageContent(PI, Buf.data())) {
      bool AnyW = false, AnyR = false;
      for (uint32_t I = 0; I != Used; ++I) {
        AnyW |= Buf[I].W.raw() != 0;
        AnyR |= Buf[I].R.raw() != 0;
      }
      if (AnyR)
        Kind = kPageDense;
      else if (AnyW)
        Kind = kPageWriteOnly;
    }
    Writer.u8(Kind);
    if (Kind == kPageAbsent)
      continue;
    if (Kind == kPageWriteOnly) {
      for (uint32_t I = 0; I != Used; ++I)
        Writer.u64(static_cast<uint64_t>(Buf[I].W.raw()));
      continue;
    }
    for (uint32_t I = 0; I != Used; ++I) {
      Writer.u64(static_cast<uint64_t>(Buf[I].W.raw()));
      writeEpochOrClock(Buf[I].R);
    }
  }
  Writer.u64(Rules.ReadSameEpoch);
  Writer.u64(Rules.ReadShared);
  Writer.u64(Rules.ReadExclusive);
  Writer.u64(Rules.ReadShare);
  Writer.u64(Rules.WriteSameEpoch);
  Writer.u64(Rules.WriteExclusive);
  Writer.u64(Rules.WriteShared);
}

template <typename EpochT>
bool BasicFastTrack<EpochT>::restoreShadow(ByteReader &Reader) {
  using Table = ShadowTable<EpochT>;
  using RawT = typename Table::RawT;
  if (!restoreClocks(Reader))
    return false;
  Shadow.reset(Shadow.numVars()); // drop any state from a partial restore

  const uint32_t Head = Reader.u32();
  if (Reader.failed())
    return false;

  if (Head == kShadowFormatV2) {
    if (Reader.u64() != Shadow.numVars())
      return false;
    // Mirror of snapshotShadow's writeEpochOrClock: the READ_SHARED
    // sentinel re-inflates into a freshly assigned side-store handle
    // (the ungated internal path — restore must not consume injected
    // fault ordinals, hence no policy-gated inflate()).
    auto readEpochOrClock = [&](EpochT &Out) {
      EpochT E = EpochT::fromRaw(static_cast<RawT>(Reader.u64()));
      if (E == EpochT::readShared()) {
        Out = Shadow.inflateForRestore();
        return readClock(Reader, Shadow.clockFor(Out));
      }
      Out = E;
      return !Reader.failed();
    };
    for (size_t PI = 0, E = Shadow.numPages(); PI != E; ++PI) {
      const uint8_t Kind = Reader.u8();
      if (Reader.failed() || Kind > kPageSummarized)
        return false;
      if (Kind == kPageAbsent)
        continue;
      if (Kind == kPageSummarized) {
        if (!Shadow.paged())
          return false; // summaries cannot exist in an eager table
        typename Table::Slot Sum;
        if (!readEpochOrClock(Sum.W) || !readEpochOrClock(Sum.R))
          return false;
        Shadow.installSummary(PI, Sum);
        continue;
      }
      const uint32_t Used = Shadow.slotsInPage(PI);
      const VarId Base = static_cast<VarId>(PI << Table::PageShift);
      for (uint32_t I = 0; I != Used; ++I) {
        typename Table::Slot &S = Shadow.slot(Base + I);
        S.W = EpochT::fromRaw(static_cast<RawT>(Reader.u64()));
        if (Kind == kPageWriteOnly)
          continue;
        if (!readEpochOrClock(S.R))
          return false;
      }
      if (Reader.failed())
        return false;
    }
  } else {
    // v1 (legacy dense image): u32 count already consumed into Head.
    if (Head != Shadow.numVars())
      return false;
    for (VarId X = 0; X != Head; ++X) {
      EpochT W = EpochT::fromRaw(static_cast<RawT>(Reader.u64()));
      EpochT R = EpochT::fromRaw(static_cast<RawT>(Reader.u64()));
      if (Reader.failed())
        return false;
      if (R == EpochT::readShared()) {
        typename Table::Slot &S = Shadow.slot(X);
        S.W = W;
        S.R = Shadow.inflateForRestore();
        if (!readClock(Reader, Shadow.clockFor(S.R)))
          return false;
      } else if (W.raw() != 0 || R.raw() != 0) {
        typename Table::Slot &S = Shadow.slot(X);
        S.W = W;
        S.R = R;
      } // else: still ⊥ — leave the region absent.
    }
  }
  Rules.ReadSameEpoch = Reader.u64();
  Rules.ReadShared = Reader.u64();
  Rules.ReadExclusive = Reader.u64();
  Rules.ReadShare = Reader.u64();
  Rules.WriteSameEpoch = Reader.u64();
  Rules.WriteExclusive = Reader.u64();
  Rules.WriteShared = Reader.u64();
  return !Reader.failed();
}

namespace ft {
template class BasicFastTrack<Epoch>;
template class BasicFastTrack<Epoch64>;
} // namespace ft

FT_REGISTER_FAST_REPLAY(::ft::FastTrack);
FT_REGISTER_FAST_REPLAY(::ft::FastTrack64);

FT_REGISTER_FAST_DISPATCH(::ft::FastTrack);
FT_REGISTER_FAST_DISPATCH(::ft::FastTrack64);
