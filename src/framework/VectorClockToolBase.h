//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared base for vector-clock-based tools (BasicVC, DJIT+, MultiRace,
/// FastTrack). Implements the synchronization and threading rules of
/// Figure 3 — acquire, release, fork, join — plus the volatile and barrier
/// extensions of Section 4, which are identical across those analyses:
///
///   [FT ACQUIRE]          C't = Ct ⊔ Lm
///   [FT RELEASE]          L'm = Ct;  C't = inc_t(Ct)
///   [FT FORK]             C'u = Cu ⊔ Ct;  C't = inc_t(Ct)
///   [FT JOIN]             C't = Ct ⊔ Cu;  C'u = inc_u(Cu)
///   [FT READ VOLATILE]    C't = Ct ⊔ Lvx
///   [FT WRITE VOLATILE]   L'vx = Ct ⊔ Lvx;  C't = inc_t(Ct)
///   [FT BARRIER RELEASE]  C't = inc_t(⊔_{u∈T} Cu) for t ∈ T
///
/// These operations are rare (3.3 % of events), so the O(n) vector-clock
/// work here is "perfectly adequate" (Section 3, Other Operations).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_VECTORCLOCKTOOLBASE_H
#define FASTTRACK_FRAMEWORK_VECTORCLOCKTOOLBASE_H

#include "clock/VectorClock.h"
#include "framework/Tool.h"

namespace ft {

class ByteReader;
class ByteWriter;

/// Maintains the C (per-thread) and L (per-lock, per-volatile) components
/// of the analysis state σ = (C, L, R, W); derived tools own R and W.
class VectorClockToolBase : public Tool {
public:
  void begin(const ToolContext &Context) override;
  void onAcquire(ThreadId T, LockId M, size_t OpIndex) override;
  void onRelease(ThreadId T, LockId M, size_t OpIndex) override;
  void onFork(ThreadId T, ThreadId U, size_t OpIndex) override;
  void onJoin(ThreadId T, ThreadId U, size_t OpIndex) override;
  void onVolatileRead(ThreadId T, VolatileId V, size_t OpIndex) override;
  void onVolatileWrite(ThreadId T, VolatileId V, size_t OpIndex) override;
  void onBarrier(const std::vector<ThreadId> &Threads,
                 size_t OpIndex) override;
  size_t shadowBytes() const override;

  /// Sharded-replay support: points Ct at a clock precomputed by the
  /// sync spine (and refreshes the cached Ct(t)). In spine-driven mode
  /// this replaces dispatching the sync event itself, so a worker
  /// observes exactly the thread clocks the serial engine would have at
  /// the same trace position. Zero-copy: the spine is immutable and
  /// outlives the workers, so installing is a pointer store. Only
  /// ParallelReplay should call this; afterwards the Figure 3 handlers
  /// must not run on this tool (they mutate C, which Ct no longer
  /// tracks) — the spine-driven worker loop dispatches accesses only.
  void applySpineClock(ThreadId T, const VectorClock &Clock) {
    View[T] = &Clock;
    ClockCache[T] = Clock.get(T);
  }

protected:
  /// Checkpoint support (framework/Checkpoint.h): serializes the C, L,
  /// and volatile-L clocks. Derived tools call this from their
  /// ShardableTool::snapshotShadow before writing their own R/W state.
  void snapshotClocks(ByteWriter &Writer) const;

  /// Restores what snapshotClocks wrote. begin() must already have run
  /// with the original ToolContext (it sizes the vectors); the View and
  /// clock-cache are re-pointed at the restored C. \returns false on a
  /// malformed image.
  bool restoreClocks(ByteReader &Reader);

  /// Codec for one vector clock (size-prefixed entries), shared with
  /// derived tools that checkpoint per-variable clocks (e.g. FastTrack's
  /// read VCs).
  static void writeClock(ByteWriter &Writer, const VectorClock &Clock);
  static bool readClock(ByteReader &Reader, VectorClock &Clock);

  /// Ct: the current vector clock of thread \p T.
  const VectorClock &threadClock(ThreadId T) const { return *View[T]; }

  /// Ct(t): the current clock of thread \p T (cached, O(1)). Derived
  /// detectors pack this into their epoch representation — 32- or 64-bit
  /// — so the cache stores the unpacked clock value.
  ClockValue currentClock(ThreadId T) const { return ClockCache[T]; }

  unsigned numThreads() const { return C.size(); }

private:
  void refreshClock(ThreadId T) { ClockCache[T] = C[T].get(T); }

  std::vector<VectorClock> C;          ///< Per-thread clocks.
  std::vector<VectorClock> L;          ///< Per-lock clocks.
  std::vector<VectorClock> LVolatile;  ///< Per-volatile clocks (extended L).
  std::vector<ClockValue> ClockCache;  ///< Ct(t), kept in sync with Ct.
  /// Where Ct currently lives: &C[t] normally; a spine clock after
  /// applySpineClock. One indirection on the (rare, already O(n)) paths
  /// that read whole thread clocks; the epoch fast paths use ClockCache.
  std::vector<const VectorClock *> View;
};

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_VECTORCLOCKTOOLBASE_H
