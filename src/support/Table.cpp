#include "support/Table.h"

#include "support/Format.h"

#include <algorithm>
#include <cctype>

using namespace ft;

void Table::addHeader(std::vector<std::string> Cells) {
  Row R;
  R.Cells = std::move(Cells);
  R.IsHeader = true;
  Rows.push_back(std::move(R));
}

void Table::addRow(std::vector<std::string> Cells) {
  Row R;
  R.Cells = std::move(Cells);
  Rows.push_back(std::move(R));
}

void Table::addSeparator() {
  Row R;
  R.IsSeparator = true;
  Rows.push_back(std::move(R));
}

/// Returns true if \p S looks like a number (possibly with commas, a dot,
/// an 'x' suffix, or a '%' suffix), so it should be right-aligned.
static bool looksNumeric(const std::string &S) {
  if (S.empty())
    return false;
  bool SawDigit = false;
  for (char C : S) {
    if (std::isdigit(static_cast<unsigned char>(C))) {
      SawDigit = true;
      continue;
    }
    if (C == '.' || C == ',' || C == '-' || C == '+' || C == 'x' || C == '%' ||
        C == ' ')
      continue;
    return false;
  }
  return SawDigit;
}

std::string Table::render() const {
  std::vector<size_t> Widths;
  for (const Row &R : Rows) {
    if (Widths.size() < R.Cells.size())
      Widths.resize(R.Cells.size(), 0);
    for (size_t I = 0; I != R.Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], R.Cells[I].size());
  }

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 2;
  if (TotalWidth >= 2)
    TotalWidth -= 2;

  std::string Out;
  for (const Row &R : Rows) {
    if (R.IsSeparator) {
      Out += std::string(TotalWidth, '-');
      Out += '\n';
      continue;
    }
    std::string Line;
    for (size_t I = 0; I != R.Cells.size(); ++I) {
      const std::string &Cell = R.Cells[I];
      bool RightAlign = !R.IsHeader && looksNumeric(Cell) && I != 0;
      Line += RightAlign ? padLeft(Cell, Widths[I]) : padRight(Cell, Widths[I]);
      if (I + 1 != R.Cells.size())
        Line += "  ";
    }
    // Trim trailing spaces.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Out += Line;
    Out += '\n';
    if (R.IsHeader) {
      Out += std::string(TotalWidth, '=');
      Out += '\n';
    }
  }
  return Out;
}
