#include "support/Rng.h"

using namespace ft;

uint64_t ft::splitMix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Xoshiro256StarStar::Xoshiro256StarStar(uint64_t Seed) {
  SplitMix64 Seeder(Seed);
  for (auto &Word : State)
    Word = Seeder.next();
}

uint64_t Xoshiro256StarStar::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Xoshiro256StarStar::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow bound must be nonzero");
  // Lemire's multiply-shift; bias is < 2^-64 * Bound, negligible here.
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(next()) * Bound) >> 64);
}

int64_t Xoshiro256StarStar::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(nextBelow(Span));
}

bool Xoshiro256StarStar::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

double Xoshiro256StarStar::nextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

unsigned ft::pickWeighted(Xoshiro256StarStar &Rng, const double *Weights,
                          unsigned N) {
  assert(N > 0 && "need at least one weight");
  double Total = 0;
  for (unsigned I = 0; I != N; ++I)
    Total += Weights[I] > 0 ? Weights[I] : 0;
  assert(Total > 0 && "need at least one positive weight");
  double Draw = Rng.nextDouble() * Total;
  for (unsigned I = 0; I != N; ++I) {
    double W = Weights[I] > 0 ? Weights[I] : 0;
    if (Draw < W)
      return I;
    Draw -= W;
  }
  return N - 1; // Floating-point slop lands on the last bucket.
}
