//===--- DetectorsTest.cpp - the five baseline detectors ------------------===//

#include "core/ToolRegistry.h"
#include "detectors/BasicVC.h"
#include "detectors/DjitPlus.h"
#include "detectors/EmptyTool.h"
#include "detectors/Eraser.h"
#include "detectors/Goldilocks.h"
#include "detectors/LockSet.h"
#include "detectors/MultiRace.h"
#include "detectors/ThreadLocalFilter.h"
#include "framework/Replay.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace ft;

namespace {

size_t warningsOf(Tool &Checker, const Trace &T) {
  replay(T, Checker);
  return Checker.warnings().size();
}

Trace raceTrace() {
  return TraceBuilder().fork(0, 1).wr(0, 0).wr(1, 0).take();
}

Trace lockProtectedTrace() {
  return TraceBuilder()
      .fork(0, 1)
      .lockedWr(0, 0, 0)
      .lockedRd(1, 0, 0)
      .lockedWr(1, 0, 0)
      .join(0, 1)
      .take();
}

Trace forkJoinHandoffTrace() {
  // Race-free only via fork/join edges — no locks at all.
  return TraceBuilder()
      .wr(0, 0)
      .fork(0, 1)
      .rd(1, 0)
      .wr(1, 0)
      .join(0, 1)
      .rd(0, 0)
      .wr(0, 0)
      .take();
}

Trace barrierTrace() {
  return TraceBuilder()
      .fork(0, 1)
      .wr(1, 0)
      .barrier({0, 1})
      .wr(0, 0)
      .barrier({0, 1})
      .rd(1, 0)
      .take();
}

} // namespace

//===----------------------------------------------------------------------===//
// LockSet utility.
//===----------------------------------------------------------------------===//

TEST(LockSet, SortsAndDedupes) {
  LockSet S({3, 1, 3, 2});
  EXPECT_EQ(S.size(), 3u);
  EXPECT_TRUE(S.contains(1));
  EXPECT_TRUE(S.contains(2));
  EXPECT_TRUE(S.contains(3));
  EXPECT_FALSE(S.contains(0));
}

TEST(LockSet, Intersection) {
  LockSet A({1, 2, 3});
  A.intersectWith(LockSet({2, 3, 4}));
  EXPECT_EQ(A.size(), 2u);
  EXPECT_TRUE(A.contains(2));
  EXPECT_TRUE(A.contains(3));
  A.intersectWith(LockSet());
  EXPECT_TRUE(A.empty());
}

TEST(LockSet, InsertKeepsSorted) {
  LockSet S;
  S.insert(5);
  S.insert(1);
  S.insert(5);
  EXPECT_EQ(S.size(), 2u);
  EXPECT_EQ(S.locks().front(), 1u);
}

TEST(HeldLocks, TracksAcquireRelease) {
  HeldLocks Held;
  Held.reset(2);
  Held.acquire(0, 7);
  Held.acquire(0, 9);
  EXPECT_TRUE(Held.held(0).contains(7));
  EXPECT_TRUE(Held.held(0).contains(9));
  EXPECT_TRUE(Held.held(1).empty());
  Held.release(0, 7);
  EXPECT_FALSE(Held.held(0).contains(7));
  EXPECT_TRUE(Held.held(0).contains(9));
}

//===----------------------------------------------------------------------===//
// EmptyTool and ThreadLocalFilter.
//===----------------------------------------------------------------------===//

TEST(EmptyTool, ReportsNothingPassesEverything) {
  EmptyTool Tool;
  Trace T = raceTrace();
  ReplayResult R = replay(T, Tool);
  EXPECT_EQ(Tool.warnings().size(), 0u);
  EXPECT_EQ(R.AccessesPassed, 2u);
  EXPECT_EQ(R.Events, T.size());
}

TEST(ThreadLocalFilter, FiltersThreadLocalAccesses) {
  ThreadLocalFilter Filter;
  Trace T = TraceBuilder()
                .fork(0, 1)
                .rd(0, 0) // thread-local so far: filtered
                .wr(0, 0) // still: filtered
                .rd(1, 0) // second thread: passes, var becomes shared
                .rd(0, 0) // passes
                .wr(1, 1) // new var, thread-local: filtered
                .take();
  ReplayResult R = replay(T, Filter);
  EXPECT_EQ(R.AccessesPassed, 2u);
}

//===----------------------------------------------------------------------===//
// BasicVC and DJIT+.
//===----------------------------------------------------------------------===//

TEST(BasicVC, PrecisionOnCoreTraces) {
  BasicVC A, B, C, D;
  EXPECT_EQ(warningsOf(A, raceTrace()), 1u);
  EXPECT_EQ(warningsOf(B, lockProtectedTrace()), 0u);
  EXPECT_EQ(warningsOf(C, forkJoinHandoffTrace()), 0u);
  EXPECT_EQ(warningsOf(D, barrierTrace()), 0u);
}

TEST(BasicVC, ComparesOnEveryAccess) {
  resetClockStats();
  BasicVC Tool;
  Trace T = TraceBuilder().rd(0, 0).rd(0, 0).wr(0, 0).wr(0, 0).take();
  replay(T, Tool);
  // 1 comparison per read + 2 per write = 6 for this trace.
  EXPECT_EQ(clockStats().CompareOps, 6u);
}

TEST(DjitPlus, PrecisionOnCoreTraces) {
  DjitPlus A, B, C, D;
  EXPECT_EQ(warningsOf(A, raceTrace()), 1u);
  EXPECT_EQ(warningsOf(B, lockProtectedTrace()), 0u);
  EXPECT_EQ(warningsOf(C, forkJoinHandoffTrace()), 0u);
  EXPECT_EQ(warningsOf(D, barrierTrace()), 0u);
}

TEST(DjitPlus, SameEpochSkipsComparisons) {
  DjitPlus Tool;
  Trace T = TraceBuilder().rd(0, 0).rd(0, 0).rd(0, 0).wr(0, 1).wr(0, 1)
                .take();
  replay(T, Tool);
  EXPECT_EQ(Tool.ruleStats().ReadSameEpoch, 2u);
  EXPECT_EQ(Tool.ruleStats().ReadGeneral, 1u);
  EXPECT_EQ(Tool.ruleStats().WriteSameEpoch, 1u);
  EXPECT_EQ(Tool.ruleStats().WriteGeneral, 1u);
}

TEST(DjitPlus, SameEpochReadOfWrittenDataStillChecked) {
  // A same-epoch *read* hit requires a prior read in the epoch, not a
  // write; DJIT+ tracks R and W separately.
  DjitPlus Tool;
  Trace T = TraceBuilder().wr(0, 0).rd(0, 0).take();
  replay(T, Tool);
  EXPECT_EQ(Tool.ruleStats().ReadGeneral, 1u);
  EXPECT_EQ(Tool.warnings().size(), 0u);
}

TEST(DjitPlus, WarnsOnceReportsConflictingThread) {
  DjitPlus Tool;
  Trace T = TraceBuilder().fork(0, 1).wr(0, 0).wr(1, 0).wr(0, 0).take();
  replay(T, Tool);
  ASSERT_EQ(Tool.warnings().size(), 1u);
  EXPECT_EQ(Tool.warnings()[0].PriorThread, 0u);
  EXPECT_EQ(Tool.warnings()[0].CurrentThread, 1u);
}

//===----------------------------------------------------------------------===//
// Eraser: fast but imprecise, in both directions.
//===----------------------------------------------------------------------===//

TEST(Eraser, LockDisciplineIsQuiet) {
  Eraser Tool;
  EXPECT_EQ(warningsOf(Tool, lockProtectedTrace()), 0u);
}

TEST(Eraser, DetectsUnprotectedSharing) {
  Eraser Tool;
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(0, 0)
                .wr(1, 0) // no lock: SharedModified with empty lockset
                .take();
  EXPECT_EQ(warningsOf(Tool, T), 1u);
}

TEST(Eraser, FalseAlarmOnForkJoinHandoff) {
  // The fork/join hand-off is race-free, but Eraser has no happens-before
  // reasoning: the child's unprotected write trips the empty lockset.
  Eraser Tool;
  EXPECT_EQ(warningsOf(Tool, forkJoinHandoffTrace()), 1u);
}

TEST(Eraser, MissesRaceHiddenByExclusiveState) {
  // wr(0,x) then rd(1,x)/wr(1,x) with no synchronization: a real race,
  // but Eraser's Exclusive->Shared transition forgets thread 0's write.
  // (The "intentional unsoundness" that loses two hedc races, §5.1.)
  Eraser Tool;
  Trace T = TraceBuilder().fork(0, 1).wr(0, 0).rd(1, 0).take();
  EXPECT_EQ(warningsOf(Tool, T), 0u);
}

TEST(Eraser, ReadSharedDataNeverWarns) {
  Eraser Tool;
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .rd(1, 0)
                .rd(2, 0)
                .rd(0, 0)
                .take();
  EXPECT_EQ(warningsOf(Tool, T), 0u);
}

TEST(Eraser, BarrierAwareVariantIsQuietAcrossPhases) {
  Eraser Aware(/*BarrierAware=*/true);
  EXPECT_EQ(warningsOf(Aware, barrierTrace()), 0u);
}

TEST(Eraser, BarrierObliviousVariantWarnsAcrossPhases) {
  Eraser Oblivious(/*BarrierAware=*/false);
  EXPECT_EQ(warningsOf(Oblivious, barrierTrace()), 1u);
}

TEST(Eraser, LocksetIntersectionAcrossTwoLocks) {
  // Accesses protected by {m0,m1} then {m1}: candidate set stays {m1}.
  Eraser Tool;
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acq(0, 0)
                .acq(0, 1)
                .wr(0, 0)
                .rel(0, 1)
                .rel(0, 0)
                .acq(1, 1)
                .wr(1, 0)
                .rel(1, 1)
                .take();
  EXPECT_EQ(warningsOf(Tool, T), 0u);
}

//===----------------------------------------------------------------------===//
// MultiRace: DJIT+ precision-ish with lockset short-circuit.
//===----------------------------------------------------------------------===//

TEST(MultiRace, CoreTraces) {
  MultiRace A, B, C, D;
  EXPECT_EQ(warningsOf(A, raceTrace()), 1u);
  EXPECT_EQ(warningsOf(B, lockProtectedTrace()), 0u);
  EXPECT_EQ(warningsOf(C, forkJoinHandoffTrace()), 0u);
  EXPECT_EQ(warningsOf(D, barrierTrace()), 0u);
}

TEST(MultiRace, LockProtectedAccessesSkipVcComparisons) {
  MultiRace Tool;
  replay(lockProtectedTrace(), Tool);
  EXPECT_EQ(Tool.stats().VcComparisons, 0u);
  EXPECT_GT(Tool.stats().LockSetOps, 0u);
}

TEST(MultiRace, UnprotectedSharingFallsBackToVcChecks) {
  MultiRace Tool;
  Trace T = TraceBuilder()
                .fork(0, 1)
                .lockedWr(0, 0, 0)
                .wr(1, 0) // lockset empties here
                .take();
  replay(T, Tool);
  EXPECT_GT(Tool.stats().VcComparisons, 0u);
  EXPECT_EQ(Tool.warnings().size(), 1u);
}

TEST(MultiRace, MissesRaceHiddenByThreadLocalState) {
  // Same unsound Exclusive hand-off as Eraser: both threads' accesses are
  // unsynchronized but MultiRace's first transition records no history.
  MultiRace Tool;
  Trace T = TraceBuilder().fork(0, 1).wr(0, 0).rd(1, 0).take();
  replay(T, Tool);
  EXPECT_EQ(Tool.warnings().size(), 0u);
}

//===----------------------------------------------------------------------===//
// Goldilocks: precise without vector clocks.
//===----------------------------------------------------------------------===//

TEST(Goldilocks, CoreTracesSoundMode) {
  Goldilocks A(false), B(false), C(false), D(false);
  EXPECT_EQ(warningsOf(A, raceTrace()), 1u);
  EXPECT_EQ(warningsOf(B, lockProtectedTrace()), 0u);
  EXPECT_EQ(warningsOf(C, forkJoinHandoffTrace()), 0u);
  EXPECT_EQ(warningsOf(D, barrierTrace()), 0u);
}

TEST(Goldilocks, LockTransferChain) {
  // x's lockset flows 0 -> m -> 1 across the release/acquire pair.
  Goldilocks Tool(false);
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(0, 0)
                .acq(0, 0)
                .rel(0, 0)
                .acq(1, 0)
                .rd(1, 0)
                .rel(1, 0)
                .take();
  EXPECT_EQ(warningsOf(Tool, T), 0u);
}

TEST(Goldilocks, VolatileTransfer) {
  Goldilocks Tool(false);
  Trace T = TraceBuilder()
                .fork(0, 1)
                .wr(0, 0)
                .volWr(0, 0)
                .volRd(1, 0)
                .rd(1, 0)
                .take();
  EXPECT_EQ(warningsOf(Tool, T), 0u);
}

TEST(Goldilocks, DetectsReadWriteRace) {
  Goldilocks Tool(false);
  Trace T = TraceBuilder().fork(0, 1).rd(0, 0).rd(1, 0).wr(1, 0).take();
  // rd(0,x) races with wr(1,x).
  EXPECT_EQ(warningsOf(Tool, T), 1u);
}

TEST(Goldilocks, UnsoundThreadLocalFastPathMissesHandoffRace) {
  Trace T = TraceBuilder().fork(0, 1).wr(0, 0).rd(1, 0).take();
  Goldilocks Sound(false);
  EXPECT_EQ(warningsOf(Sound, T), 1u); // real race, sound mode finds it
  Goldilocks Fast(true);
  EXPECT_EQ(warningsOf(Fast, T), 0u); // fast path forgets the hand-off
}

TEST(Goldilocks, ThreadLocalFastPathStillCatchesLaterRaces) {
  Goldilocks Tool(true);
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .wr(1, 0) // thread-local phase (owner: 1)
                .wr(2, 0) // hand-off forgotten...
                .wr(1, 0) // ...but this later unsynchronized write races
                .take();
  EXPECT_EQ(warningsOf(Tool, T), 1u);
}

//===----------------------------------------------------------------------===//
// Registry.
//===----------------------------------------------------------------------===//

TEST(ToolRegistry, CreatesEveryRegisteredTool) {
  for (const std::string &Name : registeredToolNames()) {
    auto Tool = createTool(Name);
    ASSERT_NE(Tool, nullptr) << Name;
    EXPECT_NE(Tool->name(), nullptr);
  }
}

TEST(ToolRegistry, IsCaseInsensitiveAndRejectsUnknown) {
  EXPECT_NE(createTool("FastTrack"), nullptr);
  EXPECT_NE(createTool("DJIT+"), nullptr);
  EXPECT_NE(createTool("tl"), nullptr);
  EXPECT_EQ(createTool("nonexistent"), nullptr);
}

TEST(ToolRegistry, RegisteredToolsAgreeOnSimpleRace) {
  Trace T = raceTrace();
  for (const std::string &Name : registeredToolNames()) {
    if (Name == "empty")
      continue;
    auto Tool = createTool(Name);
    replay(T, *Tool);
    if (Name == "goldilocks")
      continue; // default unsound thread-local fast path hides the hand-off
    EXPECT_EQ(Tool->warnings().size(), 1u) << Name;
  }
}
