#include "checkers/SingleTrack.h"

using namespace ft;

void SingleTrack::checkIncomingEdge(ThreadId T, const VectorClock &Source,
                                    ThreadId From, size_t OpIndex,
                                    const std::string &EdgeDesc) {
  // Determinism: the producing access must be ordered entirely before the
  // block began; any concurrent influence makes the block's result
  // schedule-dependent.
  if (!Source.leq(txn(T).BeginSnapshot))
    reportViolation(T, OpIndex,
                    "nondeterministic " + EdgeDesc + " from thread " +
                        std::to_string(From));
}
