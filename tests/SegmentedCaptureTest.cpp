//===--- SegmentedCaptureTest.cpp - crash-safe segmented flight recorder --===//
//
// The segmented writer/recovery pair in isolation (no runtime involved):
// sealing, footers, checksums, torn-tail salvage, and the stop-at-gap
// rules that keep every recovery a consistent prefix of the stream.
//
//===----------------------------------------------------------------------===//

#include "trace/SegmentedCapture.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

using namespace ft;

namespace {

/// Removes every segment of \p Prefix (best effort, for test hygiene).
void removeChain(const std::string &Prefix) {
  for (unsigned I = 0; I != 64; ++I)
    std::remove(SegmentedTraceWriter::segmentPath(Prefix, I).c_str());
}

Trace interestingTrace(size_t Accesses) {
  TraceBuilder B;
  B.fork(0, 1);
  for (size_t I = 0; I != Accesses; ++I) {
    B.acq(I % 2, 0).wr(I % 2, static_cast<VarId>(I % 8)).rel(I % 2, 0);
  }
  B.join(0, 1);
  return B.take();
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::binary);
  Out << Content;
}

} // namespace

TEST(SegmentedCapture, SegmentPathsAreStableAndOrdered) {
  EXPECT_EQ(SegmentedTraceWriter::segmentPath("run", 0), "run.seg000000.trc");
  EXPECT_EQ(SegmentedTraceWriter::segmentPath("run", 41), "run.seg000041.trc");
}

TEST(SegmentedCapture, RoundTripsAcrossManySmallSegments) {
  const std::string Prefix = "segtest_roundtrip";
  removeChain(Prefix);
  Trace T = interestingTrace(40);

  SegmentWriterOptions Options;
  Options.SegmentBytes = 128; // force many seals
  SegmentedTraceWriter Writer(Prefix, Options);
  // Append in uneven runs, like the sequencer's batches (the size bound
  // is checked per batch, so runs must stay small to get many seals).
  size_t At = 0;
  for (size_t Run : {size_t(1), size_t(7), size_t(30), size_t(30),
                     size_t(30), size_t(200)}) {
    size_t N = std::min(Run, T.size() - At);
    Writer.append(T.operations().data() + At, N);
    At += N;
  }
  ASSERT_EQ(At, T.size());
  ASSERT_TRUE(Writer.finish().ok());
  EXPECT_FALSE(Writer.broken());
  EXPECT_GT(Writer.segmentsSealed(), 2u);
  EXPECT_EQ(Writer.recordsWritten(), T.size());

  Trace Recovered;
  CaptureRecovery R = recoverSegmentedCapture(Prefix, Recovered);
  ASSERT_TRUE(R.St.ok()) << R.St.message();
  EXPECT_EQ(R.SegmentsSealed, Writer.segmentsSealed());
  EXPECT_EQ(R.SegmentsTorn, 0u);
  EXPECT_EQ(R.Records, T.size());
  EXPECT_EQ(serializeTrace(Recovered), serializeTrace(T));
  removeChain(Prefix);
}

TEST(SegmentedCapture, EverySealedSegmentEndsWithAFooterLine) {
  const std::string Prefix = "segtest_footer";
  removeChain(Prefix);
  Trace T = interestingTrace(20);
  SegmentWriterOptions Options;
  Options.SegmentBytes = 200;
  SegmentedTraceWriter Writer(Prefix, Options);
  Writer.append(T.operations().data(), T.size());
  ASSERT_TRUE(Writer.finish().ok());

  for (unsigned I = 0; I != Writer.segmentsSealed(); ++I) {
    std::string Content =
        slurp(SegmentedTraceWriter::segmentPath(Prefix, I));
    ASSERT_FALSE(Content.empty());
    size_t LastLine = Content.rfind('\n', Content.size() - 2);
    LastLine = LastLine == std::string::npos ? 0 : LastLine + 1;
    EXPECT_EQ(Content.compare(LastLine, 15, "# ftseg sealed "), 0)
        << "segment " << I;
  }
  removeChain(Prefix);
}

TEST(SegmentedCapture, TornTailYieldsTheValidPrefix) {
  const std::string Prefix = "segtest_torn";
  removeChain(Prefix);
  Trace T = interestingTrace(20);

  // One sealed segment from the writer...
  SegmentWriterOptions Options;
  Options.SegmentBytes = 1; // seal on the first append
  SegmentedTraceWriter Writer(Prefix, Options);
  Writer.append(T.operations().data(), T.size());
  ASSERT_TRUE(Writer.finish().ok());
  ASSERT_EQ(Writer.segmentsSealed(), 1u);

  // ...then a hand-made unsealed successor a crash cut off mid-record:
  // three whole records and a torn fourth with no trailing newline.
  dump(SegmentedTraceWriter::segmentPath(Prefix, 1),
       "acq 0 0\nwr 0 3\nrel 0 0\nwr 0");

  Trace Recovered;
  CaptureRecovery R = recoverSegmentedCapture(Prefix, Recovered);
  ASSERT_TRUE(R.St.ok()) << R.St.message();
  EXPECT_EQ(R.SegmentsSealed, 1u);
  EXPECT_EQ(R.SegmentsTorn, 1u);
  EXPECT_EQ(R.Records, T.size() + 3);
  ASSERT_EQ(Recovered.size(), T.size() + 3);
  EXPECT_EQ(Recovered[T.size() + 1].Kind, OpKind::Write);
  EXPECT_EQ(Recovered[T.size() + 1].Target, 3u);
  // The torn tail is reported, not hidden.
  bool TornNote = false;
  for (const Diagnostic &D : R.Diags)
    TornNote |= D.Sev == Severity::Note &&
                D.Message.find("torn tail") != std::string::npos;
  EXPECT_TRUE(TornNote);
  removeChain(Prefix);
}

TEST(SegmentedCapture, CorruptedSealedSegmentFailsItsChecksum) {
  const std::string Prefix = "segtest_corrupt";
  removeChain(Prefix);
  Trace T = interestingTrace(20);
  SegmentWriterOptions Options;
  Options.SegmentBytes = 200;
  SegmentedTraceWriter Writer(Prefix, Options);
  for (size_t At = 0; At < T.size(); At += 8)
    Writer.append(T.operations().data() + At, std::min<size_t>(8, T.size() - At));
  ASSERT_TRUE(Writer.finish().ok());
  ASSERT_GT(Writer.segmentsSealed(), 1u);

  // Flip one payload byte in the second segment; its footer checksum must
  // catch it, and recovery must stop at the still-consistent prefix.
  std::string Path = SegmentedTraceWriter::segmentPath(Prefix, 1);
  std::string Content = slurp(Path);
  Content[0] = Content[0] == 'w' ? 'r' : 'w';
  dump(Path, Content);

  Trace Recovered;
  CaptureRecovery R = recoverSegmentedCapture(Prefix, Recovered);
  EXPECT_FALSE(R.St.ok());
  EXPECT_EQ(R.St.code(), StatusCode::ValidationError);
  EXPECT_EQ(R.SegmentsSealed, 1u); // only segment 0 made it
  removeChain(Prefix);
}

TEST(SegmentedCapture, RecoveryStopsAtAMissingSegment) {
  const std::string Prefix = "segtest_gap";
  removeChain(Prefix);
  Trace T = interestingTrace(20);
  SegmentWriterOptions Options;
  Options.SegmentBytes = 100;
  SegmentedTraceWriter Writer(Prefix, Options);
  for (size_t At = 0; At < T.size(); At += 8)
    Writer.append(T.operations().data() + At, std::min<size_t>(8, T.size() - At));
  ASSERT_TRUE(Writer.finish().ok());
  ASSERT_GT(Writer.segmentsSealed(), 2u);

  // Deleting segment 1 severs the chain: segments 2+ are unreachable (a
  // recovery crossing the gap would not be a prefix of the stream).
  std::remove(SegmentedTraceWriter::segmentPath(Prefix, 1).c_str());

  Trace Recovered;
  CaptureRecovery R = recoverSegmentedCapture(Prefix, Recovered);
  ASSERT_TRUE(R.St.ok());
  EXPECT_EQ(R.SegmentsSealed, 1u);
  EXPECT_LT(R.Records, T.size());
  removeChain(Prefix);
}

TEST(SegmentedCapture, EmptyChainRecoversToAnEmptyTrace) {
  const std::string Prefix = "segtest_none";
  removeChain(Prefix);
  Trace Recovered;
  CaptureRecovery R = recoverSegmentedCapture(Prefix, Recovered);
  EXPECT_TRUE(R.St.ok());
  EXPECT_EQ(R.SegmentsSealed, 0u);
  EXPECT_EQ(R.SegmentsTorn, 0u);
  EXPECT_EQ(R.Records, 0u);
  EXPECT_TRUE(Recovered.empty());
}

TEST(SegmentedCapture, WholeRecordTailWithNoNewlineIsDiscarded) {
  // Only the bytes after the last newline are suspect; a file that is
  // nothing but a torn record recovers to zero records, not an error.
  const std::string Prefix = "segtest_allsuspect";
  removeChain(Prefix);
  dump(SegmentedTraceWriter::segmentPath(Prefix, 0), "wr 0 1");
  Trace Recovered;
  CaptureRecovery R = recoverSegmentedCapture(Prefix, Recovered);
  EXPECT_TRUE(R.St.ok());
  EXPECT_EQ(R.SegmentsTorn, 1u);
  EXPECT_EQ(R.Records, 0u);
  EXPECT_TRUE(Recovered.empty());
  removeChain(Prefix);
}
