//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel sharded replay engine (docs/ARCHITECTURE.md, "Sharded
/// replay"). Offline replay admits a parallelism the online detectors of
/// the paper cannot exploit: per-variable shadow state depends on thread
/// clocks only at synchronization points, so a recorded trace can be
/// partitioned *by variable* and replayed on many cores.
///
/// Pipeline:
///   1. Serial pre-pass: collectSyncOps extracts the dispatched sync
///      schedule; for spine-driven tools, buildSyncSpine additionally
///      precomputes every thread clock at every sync point. Access
///      schedules are never materialized — shard membership is the pure
///      test mapped-var % N, evaluated by the workers in parallel.
///   2. N workers, each owning a cloneForShard() of the tool, scan the
///      shared immutable trace, replaying their shard's accesses in
///      trace order — installing spine clocks (SpineDriven) or replaying
///      the sync schedule (SyncReplay) in between.
///   3. Deterministic merge: warnings are sorted back into trace order
///      (op indices are unique, and the one-warning-per-variable dedup
///      is shard-local by construction), rule counters fold via
///      ShardableTool::mergeShard, and worker clock-op counts fold into
///      the calling thread's ClockStats block.
///
/// The result is bit-identical to serial replay() for every opted-in
/// tool: same warnings in the same order, same rule counters, same
/// pass/filter decisions. Tools that do not implement ShardableTool
/// (the order-sensitive transactional checkers) transparently fall back
/// to the serial engine.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_PARALLELREPLAY_H
#define FASTTRACK_FRAMEWORK_PARALLELREPLAY_H

#include "framework/Replay.h"
#include "framework/ShardableTool.h"

namespace ft {

/// Options controlling one sharded replay.
struct ParallelReplayOptions {
  /// Granularity / lock-filtering options, as for replay().
  ReplayOptions Replay;

  /// Worker count. 0 picks std::thread::hardware_concurrency(); 1 (or a
  /// tool without ShardableTool) runs the serial engine.
  unsigned NumShards = 0;

  /// Stall watchdog: when nonzero, a monitor thread samples per-worker
  /// progress counters (bumped every ~1024 trace positions) and declares
  /// a worker stalled after this many milliseconds without progress. All
  /// workers are then cooperatively cancelled and the engine falls back
  /// to the serial replay path, which needs no inter-thread coordination
  /// to finish. 0 disables the watchdog (no monitor thread, no counter
  /// traffic).
  unsigned WatchdogTimeoutMs = 0;

  /// Fault injection (test-only): this worker index reports no progress
  /// until cancelled, exercising the watchdog → serial-fallback path
  /// deterministically. -1 disables. Only honored when the watchdog is
  /// enabled — an injected stall with no watchdog would hang the join.
  int InjectStallShard = -1;
};

/// Measurements from one sharded replay.
struct ParallelReplayResult {
  /// Aggregated measurements, field-compatible with serial replay():
  /// Events and AccessesPassed match the serial run exactly; Seconds is
  /// the end-to-end wall time (pre-pass + slowest worker + merge);
  /// Clocks sums all threads' vector-clock activity (pre-pass included),
  /// so it exceeds the serial count by the per-worker spine/sync cost.
  ReplayResult Total;

  /// False when the engine fell back to serial replay (tool not
  /// shardable, or an effective shard count of 1).
  bool Sharded = false;

  /// How workers reconstructed sync state (meaningful when Sharded).
  ShardMode Mode = ShardMode::SyncReplay;

  /// Effective worker count (1 when not Sharded).
  unsigned Shards = 1;

  /// Wall time of the serial pre-pass (partition + spine build).
  double PrePassSeconds = 0;

  /// Heap footprint of the pre-pass artifacts (sync-schedule index and,
  /// in spine-driven mode, the recorded spine clocks).
  size_t PlanBytes = 0;
  size_t SpineBytes = 0;

  /// Clock changes recorded by the spine (0 in sync-replay mode).
  size_t SpineUpdates = 0;

  /// Per-worker replay-loop wall times (empty when not Sharded).
  std::vector<double> ShardSeconds;

  /// True when the stall watchdog cancelled the sharded attempt. Total
  /// then reflects the serial rerun — correct results, degraded speed.
  bool WatchdogFired = false;

  /// Watchdog/fallback notices.
  std::vector<Diagnostic> Diags;
};

/// Replays \p T through \p Primary using \p Options.NumShards workers.
/// On return \p Primary holds the merged warnings and rule counters, as
/// if it had replayed the trace serially; its per-variable shadow state,
/// however, lives in the discarded clones — callers needing shadow-state
/// queries afterwards (e.g. Eraser::isUnprotected) should use replay().
ParallelReplayResult parallelReplay(
    const Trace &T, Tool &Primary,
    const ParallelReplayOptions &Options = ParallelReplayOptions());

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_PARALLELREPLAY_H
