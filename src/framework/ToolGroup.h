//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ToolGroup: run several Tools over one event stream, with fault
/// isolation between them.
///
/// RoadRunner lets checkers be chained; the analogue here is a Tool that
/// fans every event out to its members. The group exists for two reasons:
///
///  - **Apples-to-apples runs.** One replay (or one online session) can
///    feed FastTrack and a reference detector simultaneously, paying the
///    event-stream cost once.
///  - **Quarantine.** A member that throws from an event handler is
///    *quarantined*: the group records a ToolFault diagnostic, stops
///    forwarding events to that member (including end() — its shadow
///    state is suspect), and keeps every other member detecting. Without
///    a group, a throwing tool halts the whole driver
///    (OnlineDriver::offer's backstop).
///
/// Warnings reported by members are adopted into the group after every
/// forwarded event, preserving stream order, so `group.warnings()` and an
/// OnlineDriver's warning sink see the union (deduplicated to one warning
/// per variable, the standard Tool policy — members agreeing on a racy
/// variable produce one warning, first reporter wins).
///
/// The group does not own its members; they must outlive it.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_FRAMEWORK_TOOLGROUP_H
#define FASTTRACK_FRAMEWORK_TOOLGROUP_H

#include "framework/Tool.h"
#include "support/Status.h"

#include <vector>

namespace ft {

/// Fans one event stream out to several member Tools, quarantining any
/// member that throws.
class ToolGroup : public Tool {
public:
  ToolGroup() = default;
  explicit ToolGroup(std::vector<Tool *> Tools);

  /// Adds a member (before begin()).
  void addMember(Tool &Member);

  const char *name() const override { return "ToolGroup"; }

  void begin(const ToolContext &Context) override;
  void end() override;

  bool onRead(ThreadId T, VarId X, size_t OpIndex) override;
  bool onWrite(ThreadId T, VarId X, size_t OpIndex) override;
  void onAcquire(ThreadId T, LockId M, size_t OpIndex) override;
  void onRelease(ThreadId T, LockId M, size_t OpIndex) override;
  void onFork(ThreadId T, ThreadId U, size_t OpIndex) override;
  void onJoin(ThreadId T, ThreadId U, size_t OpIndex) override;
  void onVolatileRead(ThreadId T, VolatileId V, size_t OpIndex) override;
  void onVolatileWrite(ThreadId T, VolatileId V, size_t OpIndex) override;
  void onBarrier(const std::vector<ThreadId> &Threads,
                 size_t OpIndex) override;

  /// Sum over live members (a quarantined member's shadow state is
  /// released from the budget's point of view: it will never grow again
  /// and the member is effectively dead).
  size_t shadowBytes() const override;

  size_t numMembers() const { return Members.size(); }

  /// True when member \p Index has been quarantined by a throw.
  bool quarantined(size_t Index) const { return Members[Index].Quarantined; }

  /// Members still receiving events.
  size_t activeMembers() const;

  /// ToolFault diagnostics, one per quarantined member, anchored to the
  /// op index of the throwing call.
  const std::vector<Diagnostic> &diags() const { return Diags; }

private:
  struct Member {
    Tool *T = nullptr;
    bool Quarantined = false;
    size_t WarningCursor = 0; ///< Member warnings adopted so far.
  };

  /// Calls \p Fn on member \p M, quarantining it on a throw.
  template <typename FnT> void guarded(Member &M, size_t OpIndex, FnT &&Fn);

  void quarantine(Member &M, size_t OpIndex, const char *What);
  void adoptNewWarnings();

  std::vector<Member> Members;
  std::vector<Diagnostic> Diags;
};

} // namespace ft

#endif // FASTTRACK_FRAMEWORK_TOOLGROUP_H
