//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table/figure harnesses: environment knobs,
/// repeated timed replays, and slowdown computation against the EMPTY
/// tool (the paper's normalization baseline).
///
/// Knobs:
///   FT_BENCH_SIZE  — workload size factor (default 1.0)
///   FT_BENCH_REPS  — timing repetitions, best-of (default 3)
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_BENCH_BENCHUTIL_H
#define FASTTRACK_BENCH_BENCHUTIL_H

#include "framework/Replay.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ft::bench {

inline double sizeFactor() {
  if (const char *Env = std::getenv("FT_BENCH_SIZE"))
    return std::atof(Env) > 0 ? std::atof(Env) : 4.0;
  // Default 4x the generators' base volume: large enough for stable
  // wall-clock measurements, small enough to finish in seconds.
  return 4.0;
}

inline unsigned repetitions() {
  if (const char *Env = std::getenv("FT_BENCH_REPS")) {
    int Reps = std::atoi(Env);
    if (Reps > 0)
      return static_cast<unsigned>(Reps);
  }
  return 3;
}

/// Replays \p T through \p Checker `repetitions()` times (clearing
/// warnings in between) and returns the result of the fastest run.
inline ReplayResult timedReplay(const Trace &T, Tool &Checker,
                                const ReplayOptions &Options = {}) {
  ReplayResult Best;
  for (unsigned Rep = 0, Reps = repetitions(); Rep != Reps; ++Rep) {
    Checker.clearWarnings();
    ReplayResult Result = replay(T, Checker, Options);
    if (Rep == 0 || Result.Seconds < Best.Seconds)
      Best = Result;
  }
  return Best;
}

/// Prints a section banner.
inline void banner(const std::string &Title) {
  std::printf("\n==== %s ====\n\n", Title.c_str());
}

} // namespace ft::bench

#endif // FASTTRACK_BENCH_BENCHUTIL_H
