//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and static checks for MiniConc:
///   - assigns VarIds / VolatileIds / LockIds / barrier ids and function
///     indices, and checks for duplicate declarations;
///   - resolves every identifier to a local slot, shared variable,
///     volatile, or callee, with locals shadowing globals;
///   - allocates local slots (function-level scoping, parameters first);
///   - checks call/spawn arity, array subscripting, assignment targets,
///     presence of fn main() with no parameters, and 'return' placement.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_LANG_SEMA_H
#define FASTTRACK_LANG_SEMA_H

#include "lang/Ast.h"

#include <string_view>

namespace ft::lang {

/// Resolves \p P in place. \returns true when no diagnostics were added.
bool resolveProgram(Program &P, std::vector<Diag> &Diags);

/// Parses and resolves in one step.
bool compileProgram(std::string_view Source, Program &Out,
                    std::vector<Diag> &Diags);

} // namespace ft::lang

#endif // FASTTRACK_LANG_SEMA_H
