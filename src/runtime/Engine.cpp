#include "runtime/Engine.h"

#include "runtime/FaultPlan.h"
#include "trace/TraceIO.h"
#include "trace/TraceValidator.h"

#include <cassert>
#include <chrono>

using namespace ft;
using namespace ft::runtime;

namespace {

/// The one live session (shims attach through Engine::current()).
std::atomic<Engine *> CurrentEngine{nullptr};

/// Session stamps start at 1 so a zero-initialized object cache never
/// matches a real generation.
std::atomic<uint64_t> GenerationCounter{0};

ToolContext capacityContext(const OnlineOptions &Options) {
  ToolContext Context;
  Context.NumThreads = Options.MaxThreads;
  Context.NumVars = Options.MaxVars;
  Context.NumLocks = Options.MaxLocks;
  Context.NumVolatiles = Options.MaxVolatiles;
  return Context;
}

OnlineDriverOptions driverOptions(const OnlineOptions &Options) {
  OnlineDriverOptions Driver;
  Driver.FilterReentrantLocks = Options.FilterReentrantLocks;
  Driver.WarningSink = Options.OnWarning;
  Driver.Degrade = Options.Degrade;
  if (Options.Faults)
    Driver.ForceBudgetBreachAtRawOp = Options.Faults->ForceBudgetBreachAtRawOp;
  return Driver;
}

/// Which engine/channel the calling thread is bound to. Rebinding is
/// lazy: a thread carrying a stale binding (from a finished session)
/// re-registers against the live engine on first emit.
struct TlsBinding {
  const void *E = nullptr;
  void *Ch = nullptr;
};
thread_local TlsBinding Binding;

} // namespace

Engine *Engine::current() {
  return CurrentEngine.load(std::memory_order_acquire);
}

Engine::Engine(Tool &Checker, OnlineOptions Opts)
    : Checker(Checker), Options(std::move(Opts)),
      Gen(GenerationCounter.fetch_add(1, std::memory_order_relaxed) + 1),
      Driver(Checker, capacityContext(Options), driverOptions(Options)),
      MemCapture(Options.KeepCapture ||
                 (!Options.CapturePath.empty() &&
                  Options.CaptureSegmentBytes == 0)),
      Capturing(false) {
  if (!Options.CapturePath.empty() && Options.CaptureSegmentBytes != 0) {
    // Segmented flight recorder: CapturePath names the chain prefix (a
    // trailing .trc is stripped — segments carry their own extension).
    std::string Prefix = Options.CapturePath;
    if (Prefix.size() > 4 &&
        Prefix.compare(Prefix.size() - 4, 4, ".trc") == 0)
      Prefix.resize(Prefix.size() - 4);
    SegmentWriterOptions SW;
    SW.SegmentBytes = Options.CaptureSegmentBytes;
    SegWriter = std::make_unique<SegmentedTraceWriter>(Prefix, SW);
  }
  Capturing = MemCapture || SegWriter != nullptr;

  // The constructing thread is the session's main thread, dense id 0.
  ThreadId Main = Interner.allocateThreadId();
  Binding = {this, registerThread(Main)};

  assert(CurrentEngine.load(std::memory_order_relaxed) == nullptr &&
         "one online session at a time");
  CurrentEngine.store(this, std::memory_order_release);

  SequencerThread = std::thread([this] { sequencerLoop(0); });
  if (Options.Supervise.Enabled)
    SupervisorThread = std::thread([this] { supervisorLoop(); });
}

Engine::~Engine() {
  if (!Finished)
    (void)finish();
}

Engine::Channel *Engine::registerThread(ThreadId Id) {
  std::lock_guard<std::mutex> Guard(ChannelMu);
  Channels.push_back(std::make_unique<Channel>(Id, Options.RingCapacity));
  NumChannels.store(Channels.size(), std::memory_order_release);
  return Channels.back().get();
}

Engine::Channel *Engine::channelForCurrentThread() {
  if (Binding.E == this)
    return static_cast<Channel *>(Binding.Ch);
  // A thread the runtime has not seen: auto-register so its events are
  // analyzed rather than lost. Without a fork edge its accesses are
  // conservatively unordered with every other thread; captures containing
  // it fail the validator's fork-before-first-op rule (see class comment).
  ThreadId Id = Interner.allocateThreadId();
  Channel *Ch = registerThread(Id);
  Binding = {this, Ch};
  return Ch;
}

void Engine::bindCurrentThread(ThreadId Id) {
  Binding = {this, registerThread(Id)};
}

void Engine::emit(OpKind Kind, uint32_t Target) {
  Channel *Ch = channelForCurrentThread();
  // Acquire pairs with the release store at every halt site: see the
  // Halted declaration for why relaxed would be wrong here.
  if (Halted.load(std::memory_order_acquire)) {
    Ch->DroppedPostHalt.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Backpressure: park until the sequencer drains. The ticket is drawn
  // only after space is certain, so the sequencer never waits on a seq
  // number owned by a parked thread (that would deadlock the pipeline) —
  // and an event shed while parked owns no ticket either, so shedding
  // leaves no gap in the sequence.
  if (!Ch->Ring.hasSpace() && !parkUntilSpace(Ch, Kind))
    return;
  OnlineEvent E;
  E.Seq = Seq.fetch_add(1, std::memory_order_relaxed);
  E.Kind = Kind;
  E.Target = Target;
  Ch->Ring.push(E);
}

bool Engine::parkUntilSpace(Channel *Ch, OpKind Kind) {
  // The cold path: the producer is about to block on the detector. The
  // supervisor bounds that: a parked *access* is shed after MaxParkMs (or
  // immediately in drop-and-count mode) and counted; sync events are the
  // HB spine and keep waiting — the watchdog recovers the sequencer
  // within its own deadline, so even they cannot wait unboundedly unless
  // supervision is pinned off.
  Ch->Parks.fetch_add(1, std::memory_order_relaxed);
  ProducersParked.fetch_add(1, std::memory_order_relaxed);
  const bool Droppable = isAccess(Kind) && Options.Supervise.Enabled;
  const uint64_t DeadlineNs =
      static_cast<uint64_t>(Options.Supervise.MaxParkMs) * 1000000ull;
  Stopwatch Park;
  unsigned Spins = 0;
  bool GotSpace = false;
  for (;;) {
    if (Ch->Ring.hasSpace()) {
      GotSpace = true;
      break;
    }
    if (Halted.load(std::memory_order_acquire)) {
      Ch->DroppedPostHalt.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (Droppable) {
      if (DropAccesses.load(std::memory_order_acquire)) {
        Ch->DroppedOverload.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (Park.nanoseconds() >= DeadlineNs) {
        Ch->DroppedOverload.fetch_add(1, std::memory_order_relaxed);
        DeadlineDrops.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    if (++Spins < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  ProducersParked.fetch_sub(1, std::memory_order_relaxed);
  return GotSpace;
}

ThreadId Engine::forkThread() {
  ThreadId Child = Interner.allocateThreadId();
  // Ticketed before the native thread starts, so fork(t, u) precedes
  // every event of u in the merged order.
  emit(OpKind::Fork, Child);
  return Child;
}

void Engine::joinThread(ThreadId Child) {
  // Ticketed after the native join returned, so every event of the child
  // precedes join(t, u) in the merged order.
  emit(OpKind::Join, Child);
}

void Engine::noteMaxBacklog(uint64_t Backlog) {
  uint64_t Seen = MaxBacklogSeen.load(std::memory_order_relaxed);
  while (Backlog > Seen &&
         !MaxBacklogSeen.compare_exchange_weak(Seen, Backlog,
                                               std::memory_order_relaxed))
    ;
}

void Engine::sequencerLoop(uint64_t Epoch) {
  // A successor resumes exactly at the predecessor's published watermark:
  // batches are popped, dispatched, and published atomically with respect
  // to abandonment (the epoch is only checked between batches).
  uint64_t Next = NextSeq.load(std::memory_order_acquire);
  std::vector<Channel *> Snapshot;
  size_t Known = 0;
  const size_t BatchCap = std::max<size_t>(1, Options.SequencerBatch);
  std::vector<OnlineEvent> Batch(BatchCap);
  std::vector<Operation> Delivered;
  Delivered.reserve(BatchCap);
  const FaultPlan *Faults = Options.Faults;
  uint64_t LocalMaxBacklog = 0;
  bool Abandoned = false;
  while (!Abandoned) {
    if (SequencerEpoch.load(std::memory_order_acquire) != Epoch)
      break;
    // Rung downgrades requested by the supervisor are applied here: the
    // driver is single-threaded, so only the sequencer may touch it.
    if (unsigned K = PendingDegrade.exchange(0, std::memory_order_acq_rel)) {
      while (K-- != 0 &&
             Driver.requestStepDown(StatusCode::Stalled,
                                    "supervisor: sustained overload"))
        ;
    }
    // Rebuild the channel snapshot only when a registration happened;
    // the steady-state sweep never touches ChannelMu.
    if (NumChannels.load(std::memory_order_acquire) != Known) {
      std::lock_guard<std::mutex> Guard(ChannelMu);
      Snapshot.clear();
      for (const std::unique_ptr<Channel> &Ch : Channels)
        Snapshot.push_back(Ch.get());
      Known = Channels.size();
    }
    uint64_t Backlog = Seq.load(std::memory_order_relaxed) - Next;
    if (Backlog > LocalMaxBacklog)
      LocalMaxBacklog = Backlog;
    bool Progress = false;
    for (Channel *Ch : Snapshot) {
      // Drain this ring's run of consecutive tickets in batches: the
      // events are copied out and their slots released in one Head store
      // (so a parked producer unblocks early), then dispatched from the
      // local buffer. A short batch means the run ended — either the
      // ring is out of events or its head ticket is from the future, so
      // move on to the other rings.
      for (;;) {
        // Injected wedge (FaultPlan): busy-wait *before* consuming the
        // ticket, so nothing is popped-but-undelivered — the supervisor
        // abandons this thread and its successor resumes cleanly here.
        if (Faults && Faults->takeStall(Next)) {
          while (SequencerEpoch.load(std::memory_order_acquire) == Epoch)
            std::this_thread::sleep_for(std::chrono::microseconds(100));
          Abandoned = true;
          break;
        }
        size_t Cap = BatchCap;
        if (Faults &&
            Faults->StallsArmed.load(std::memory_order_relaxed) != 0 &&
            Faults->StallAtTicket > Next &&
            Faults->StallAtTicket - Next < Cap)
          // Stop the batch right before the stall ticket so the check
          // above sees it exactly (a batch advances Next wholesale).
          Cap = static_cast<size_t>(Faults->StallAtTicket - Next);
        size_t N = Ch->Ring.popRunInto(Next, Batch.data(), Cap);
        if (N == 0)
          break;
        Progress = true;
        Delivered.clear();
        for (size_t I = 0; I != N; ++I) {
          if (Halted.load(std::memory_order_relaxed)) {
            // Ticketed before the halt landed; discarded but counted —
            // no silent loss (the relaxed load is fine: this thread set
            // the flag itself or will re-check via the driver).
            ++DiscardedPostHalt;
            continue;
          }
          Operation Op(Batch[I].Kind, Ch->Id, Batch[I].Target);
          OnlineDriver::DispatchOutcome Outcome = Driver.offer(Op);
          if (Outcome == OnlineDriver::DispatchOutcome::Delivered) {
            if (Capturing)
              Delivered.push_back(Op);
            if (Faults && Faults->inStorm(Batch[I].Seq))
              std::this_thread::sleep_for(
                  std::chrono::microseconds(Faults->DelayPerDeliveryUs));
          } else if (Outcome == OnlineDriver::DispatchOutcome::Rejected) {
            // Unrecoverable driver halt. Release pairs with the acquire
            // in emit(): the driver's diagnostics are fully written
            // before producers can observe the flag (see Halted).
            Halted.store(true, std::memory_order_release);
            ++DiscardedPostHalt;
          }
        }
        if (!Delivered.empty()) {
          // Batched capture (no per-event branch in the steady state):
          // the whole delivered run lands in one appendRun / one
          // segment write.
          if (MemCapture)
            Capture.appendRun(Delivered.data(), Delivered.size());
          if (SegWriter)
            SegWriter->append(Delivered.data(), Delivered.size());
        }
        // Publish the merge watermark per batch: the watchdog reads it
        // for stall detection and a successor resumes from it.
        NextSeq.store(Next, std::memory_order_release);
        if (N != Cap)
          break;
      }
      if (Abandoned)
        break;
    }
    if (Abandoned)
      break;
    if (Progress)
      continue;
    // No ring held ticket Next: either it is in flight (drawn but not yet
    // published — a handful of instructions), or nothing is happening.
    if (!Running.load(std::memory_order_acquire) &&
        Next == Seq.load(std::memory_order_acquire))
      break;
    std::this_thread::yield();
  }
  noteMaxBacklog(LocalMaxBacklog);
  // Vector-clock counters are thread-local (see ClockStats.h); each
  // sequencer incarnation folds its block in at exit (writes are
  // serialized by the supervisor's restart joins).
  SequencerClocks += clockStats();
}

void Engine::superviseNote(Severity Sev, StatusCode Code,
                           std::string Message) {
  std::lock_guard<std::mutex> Guard(SupMu);
  SupDiags.push_back({Code, Sev, 0, NoOpIndex, std::move(Message)});
}

void Engine::handleStall(uint64_t Watermark) {
  ++StallsSeen;
  superviseNote(
      Severity::Warning, StatusCode::Stalled,
      "sequencer stalled at watermark " + std::to_string(Watermark) +
          " past the " + std::to_string(Options.Supervise.StallDeadlineMs) +
          " ms deadline; unparking producers into drop-and-count mode");
  // Unpark blocked producers: parked accesses are shed and counted, sync
  // events keep waiting for the restarted sequencer to drain.
  DropAccesses.store(true, std::memory_order_release);
  if (StallsSeen >= 2 && Options.Degrade.Enabled) {
    PendingDegrade.fetch_add(1, std::memory_order_relaxed);
    superviseNote(Severity::Warning, StatusCode::Stalled,
                  "repeated sequencer stall: requested ladder downgrade");
  }
  if (Restarts.load(std::memory_order_relaxed) >=
      Options.Supervise.MaxRestarts) {
    // The true last resort: stop pretending the sequencer will recover.
    // The epoch bump releases a cooperatively-wedged thread (an injected
    // stall); a thread wedged inside a tool handler cannot be recovered
    // portably and would block this join — that failure mode is
    // documented, not handled.
    SequencerEpoch.fetch_add(1, std::memory_order_acq_rel);
    if (SequencerThread.joinable())
      SequencerThread.join();
    superviseNote(Severity::Error, StatusCode::Stalled,
                  "sequencer unrecoverable after " +
                      std::to_string(
                          Restarts.load(std::memory_order_relaxed)) +
                      " restart(s); detection halted");
    SequencerGaveUp.store(true, std::memory_order_release);
    // Release: the diagnostics above are visible before the flag (see
    // the Halted declaration).
    Halted.store(true, std::memory_order_release);
    return;
  }
  restartSequencerLocked();
}

void Engine::restartSequencerLocked() {
  // Abandon the wedged thread: it notices the epoch bump between batches
  // (or inside an injected stall loop) and exits. The successor resumes
  // from the published watermark; the predecessor publishes only after
  // completing a batch, so no event is lost or delivered twice.
  uint64_t NewEpoch =
      SequencerEpoch.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (SequencerThread.joinable())
    SequencerThread.join();
  Restarts.fetch_add(1, std::memory_order_relaxed);
  superviseNote(Severity::Note, StatusCode::Stalled, "sequencer restarted");
  SequencerThread = std::thread([this, NewEpoch] { sequencerLoop(NewEpoch); });
}

void Engine::supervisorLoop() {
  const SupervisorOptions &S = Options.Supervise;
  uint64_t LastMark = NextSeq.load(std::memory_order_acquire);
  uint64_t LastDeadlineDrops = DeadlineDrops.load(std::memory_order_relaxed);
  unsigned StalledMs = 0;
  unsigned PressureTicks = 0;
  while (SupervisorRun.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(S.TickMs));
    uint64_t Mark = NextSeq.load(std::memory_order_acquire);
    uint64_t Tickets = Seq.load(std::memory_order_acquire);
    if (Tickets > Mark)
      noteMaxBacklog(Tickets - Mark);

    // --- stall detection: outstanding tickets, frozen watermark ---
    if (Mark != LastMark) {
      StalledMs = 0;
      // The sequencer is draining again: leave drop-and-count mode.
      if (DropAccesses.load(std::memory_order_relaxed))
        DropAccesses.store(false, std::memory_order_release);
    } else if (Tickets != Mark &&
               !Halted.load(std::memory_order_acquire) &&
               !SequencerGaveUp.load(std::memory_order_acquire)) {
      StalledMs += S.TickMs;
      if (StalledMs >= S.StallDeadlineMs) {
        handleStall(Mark);
        StalledMs = 0;
      }
    } else {
      StalledMs = 0;
    }

    // --- pressure detection: producers continuously parked or shedding
    // accesses at the park deadline → the consumer is too slow for the
    // event rate; request one rung of load shedding per sustained window.
    uint64_t Drops = DeadlineDrops.load(std::memory_order_relaxed);
    bool Pressure = ProducersParked.load(std::memory_order_relaxed) > 0 ||
                    Drops != LastDeadlineDrops;
    if (Pressure && !Halted.load(std::memory_order_relaxed)) {
      if (++PressureTicks >= S.PressureTicksToDegrade) {
        if (Options.Degrade.Enabled) {
          PendingDegrade.fetch_add(1, std::memory_order_relaxed);
          superviseNote(Severity::Warning, StatusCode::Stalled,
                        "sustained ring pressure: requested ladder "
                        "downgrade");
        }
        PressureTicks = 0;
      }
    } else {
      PressureTicks = 0;
    }
    LastDeadlineDrops = Drops;
    LastMark = Mark;
  }
}

OnlineReport Engine::finish() {
  assert(!Finished && "finish() is callable once");
  Finished = true;

  // Drain: every ticket handed out has been merged (or discarded after a
  // halt). Requires all runtime Threads to be joined by the caller. When
  // the watchdog declared the sequencer dead, outstanding tickets will
  // never merge — skip the wait and report what happened.
  while (NextSeq.load(std::memory_order_acquire) <
             Seq.load(std::memory_order_acquire) &&
         !SequencerGaveUp.load(std::memory_order_acquire))
    std::this_thread::yield();
  Running.store(false, std::memory_order_release);
  // Stop the supervisor first so no restart can race the joins below.
  SupervisorRun.store(false, std::memory_order_release);
  if (SupervisorThread.joinable())
    SupervisorThread.join();
  if (SequencerThread.joinable())
    SequencerThread.join();
  Driver.finish();

  Report.Seconds = Watch.seconds();
  Report.Clocks = SequencerClocks;
  Report.EventsCaptured = Driver.rawOps();
  Report.EventsDispatched = Driver.dispatched();
  Report.NumWarnings = Checker.warnings().size();
  Report.Halted =
      Driver.halted() || Halted.load(std::memory_order_acquire);
  Report.Diags = Driver.diags();
  {
    std::lock_guard<std::mutex> Guard(SupMu);
    for (Diagnostic &D : SupDiags)
      Report.Diags.push_back(std::move(D));
    SupDiags.clear();
  }
  Report.DegradeRung = Driver.rung();
  Report.Degradations = Driver.degradations();
  Report.AccessesShed = Driver.accessesDropped();
  Report.SequencerRestarts = Restarts.load(std::memory_order_relaxed);
  Report.MaxBacklog = MaxBacklogSeen.load(std::memory_order_relaxed);
  Report.DroppedPostHalt = DiscardedPostHalt;
  if (SequencerGaveUp.load(std::memory_order_acquire))
    // No sequencer will ever merge the outstanding tickets; count them as
    // dropped rather than pretending the stream simply ended.
    Report.DroppedPostHalt += Seq.load(std::memory_order_acquire) -
                              NextSeq.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> Guard(ChannelMu);
    for (const std::unique_ptr<Channel> &Ch : Channels) {
      uint64_t PH = Ch->DroppedPostHalt.load(std::memory_order_relaxed);
      uint64_t OV = Ch->DroppedOverload.load(std::memory_order_relaxed);
      uint64_t PK = Ch->Parks.load(std::memory_order_relaxed);
      Report.DroppedPostHalt += PH;
      Report.DroppedOverload += OV;
      Report.ParkEpisodes += PK;
      if ((PH | OV | PK) != 0)
        Report.PerThreadDrops.push_back({Ch->Id, PH, OV, PK});
    }
  }
  if (Report.DroppedPostHalt != 0)
    // One-shot: a single diagnostic however many events were lost; the
    // per-thread accounting lives in the counters above.
    Report.Diags.push_back(
        {StatusCode::Cancelled, Severity::Warning, 0, NoOpIndex,
         std::to_string(Report.DroppedPostHalt) +
             " event(s) dropped after detection halted (per-thread counts "
             "in the report)"});

  if (SegWriter) {
    (void)SegWriter->finish();
    Report.CaptureSegments = SegWriter->segmentsSealed();
    for (const Diagnostic &D : SegWriter->diags())
      Report.Diags.push_back(D);
  }
  if (MemCapture && Options.ValidateCapture) {
    TraceValidatorOptions VOpts;
    // Shedding can strip every access of a thread while its fork/join
    // spine is still delivered, which rule (4) would flag; that is a
    // legitimate degraded capture, not a malformed one.
    VOpts.RequireThreadOps =
        Report.AccessesShed == 0 && Report.DroppedOverload == 0;
    for (Diagnostic &D : validateTrace(Capture, VOpts))
      Report.Diags.push_back(std::move(D));
  }
  if (!Options.CapturePath.empty() && !SegWriter) {
    if (Status St = saveTraceFile(Options.CapturePath, Capture); !St.ok()) {
      Diagnostic D;
      D.Code = St.code();
      D.Sev = Severity::Error;
      D.Message = "flight recorder: " + St.message();
      Report.Diags.push_back(std::move(D));
    }
  }
  if (Options.KeepCapture)
    Report.Captured = std::move(Capture);

  if (Binding.E == this)
    Binding = {};
  CurrentEngine.store(nullptr, std::memory_order_release);
  return std::move(Report);
}
