//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the transaction-aware checkers of Section 5.2
/// (the VELODROME atomicity checker and the SINGLETRACK determinism
/// checker). These analyses track a *transactional happens-before* graph
/// whose edges include not only synchronization (locks, fork/join,
/// volatiles, barriers) but also data communication: a read observes the
/// last write, a write observes the last readers.
///
/// The base class maintains per-thread transactional vector clocks that
/// join along every such edge, per-variable writer/reader records, and
/// per-thread atomic-block state; subclasses decide what constitutes a
/// violation when an edge arrives at a thread inside an atomic block.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_CHECKERS_TRANSACTIONALCLOCKBASE_H
#define FASTTRACK_CHECKERS_TRANSACTIONALCLOCKBASE_H

#include "clock/VectorClock.h"
#include "framework/Tool.h"

#include <string>
#include <vector>

namespace ft {

/// One reported violation of a checker's property (atomicity or
/// determinism), anchored at the transaction that could not be
/// serialized.
struct CheckerViolation {
  ThreadId Thread;     ///< Thread whose atomic block is violated.
  size_t BeginIndex;   ///< Op index of the block's AtomicBegin.
  size_t OpIndex;      ///< Op index where the violation was discovered.
  std::string Detail;  ///< e.g. "cycle via rd of x3 last written by t1".
};

/// Base for Velodrome/SingleTrack.
class TransactionalClockBase : public Tool {
public:
  void begin(const ToolContext &Context) override;
  bool onRead(ThreadId T, VarId X, size_t OpIndex) override;
  bool onWrite(ThreadId T, VarId X, size_t OpIndex) override;
  void onAcquire(ThreadId T, LockId M, size_t OpIndex) override;
  void onRelease(ThreadId T, LockId M, size_t OpIndex) override;
  void onFork(ThreadId T, ThreadId U, size_t OpIndex) override;
  void onJoin(ThreadId T, ThreadId U, size_t OpIndex) override;
  void onVolatileRead(ThreadId T, VolatileId V, size_t OpIndex) override;
  void onVolatileWrite(ThreadId T, VolatileId V, size_t OpIndex) override;
  void onBarrier(const std::vector<ThreadId> &Threads,
                 size_t OpIndex) override;
  void onAtomicBegin(ThreadId T, size_t OpIndex) override;
  void onAtomicEnd(ThreadId T, size_t OpIndex) override;
  size_t shadowBytes() const override;

  const std::vector<CheckerViolation> &violations() const {
    return Violations;
  }

protected:
  /// Per-thread transaction context.
  struct TxnState {
    bool Active = false;
    bool Violated = false;    ///< Report at most once per block.
    unsigned Depth = 0;       ///< Nesting depth; blocks flatten.
    size_t BeginIndex = 0;
    ClockValue BeginClock = 0; ///< T_t(t) at block begin.
    VectorClock BeginSnapshot; ///< T_t at block begin (SingleTrack).
  };

  /// Hook: an edge from \p Source (the clock of the producing access,
  /// taken at its time) produced by thread \p From arrives at thread
  /// \p T. Called only when T is inside an atomic block and From != T.
  /// Implementations call reportViolation() when their property fails.
  virtual void checkIncomingEdge(ThreadId T, const VectorClock &Source,
                                 ThreadId From, size_t OpIndex,
                                 const std::string &EdgeDesc) = 0;

  void reportViolation(ThreadId T, size_t OpIndex, std::string Detail);

  const VectorClock &txnClock(ThreadId T) const { return Clocks[T]; }
  const TxnState &txn(ThreadId T) const { return Txns[T]; }

private:
  /// Joins \p Source into T's clock, first running the violation hook if
  /// T is mid-transaction and the edge is cross-thread.
  void consumeEdge(ThreadId T, const VectorClock &Source, ThreadId From,
                   size_t OpIndex, const char *EdgeDesc);

  struct VarShadow {
    VectorClock WriteClock;
    ThreadId Writer = UnknownThread;
    /// Readers since the last write, with their clocks at read time.
    std::vector<std::pair<ThreadId, VectorClock>> Readers;
  };

  struct ChannelShadow { ///< Locks and volatiles.
    VectorClock Clock;
    ThreadId LastOwner = UnknownThread;
  };

  std::vector<VectorClock> Clocks; ///< Transactional clocks per thread.
  std::vector<TxnState> Txns;
  std::vector<VarShadow> Vars;
  std::vector<ChannelShadow> Locks;
  std::vector<ChannelShadow> Volatiles;
  std::vector<CheckerViolation> Violations;
};

} // namespace ft

#endif // FASTTRACK_CHECKERS_TRANSACTIONALCLOCKBASE_H
