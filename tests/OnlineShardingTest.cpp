//===--- OnlineShardingTest.cpp - per-shard sequencers, spine, restarts ---===//
//
// The sharded online engine's contracts:
//
//  - determinism: the same native workload run at Shards ∈ {1, 2, 4}
//    warns on exactly the same variables, and every run's flight-recorder
//    capture replays offline to the identical warning list — shard count
//    is invisible in the results;
//  - the sync spine: lock/fork/join-heavy workloads stay exactly
//    equivalent because every shard sees the full sync stream in order;
//  - resilience is per shard: a wedged shard worker is restarted by the
//    watchdog while its siblings (and the router) keep detecting, and a
//    tool without ShardableTool falls back to the single sequencer with
//    a Note rather than failing;
//  - the SequencerBatch/watermark invariant: a restarted sequencer
//    resumes from the last per-batch watermark, so the capture is
//    byte-identical whatever the batch size and however often it was
//    restarted mid-stream;
//  - the building blocks: EventRing::popInto (FIFO, non-consecutive Seq)
//    and OnlineDriver::dispatchRun (batched, devirtualized) agree with
//    the per-event paths they replace.
//
// The CI TSan job runs this binary: router, shard workers, supervisor,
// and producers all exercise their real hand-off paths here.
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "framework/Replay.h"
#include "runtime/FaultPlan.h"
#include "runtime/Instrument.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceValidator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

using namespace ft;
namespace rt = ft::runtime;

namespace {

void expectSameWarnings(const std::vector<RaceWarning> &Online,
                        const std::vector<RaceWarning> &Offline) {
  ASSERT_EQ(Online.size(), Offline.size());
  for (size_t I = 0; I != Online.size(); ++I) {
    EXPECT_EQ(Online[I].Var, Offline[I].Var) << "warning " << I;
    EXPECT_EQ(Online[I].OpIndex, Offline[I].OpIndex) << "warning " << I;
    EXPECT_EQ(Online[I].CurrentThread, Offline[I].CurrentThread);
    EXPECT_EQ(Online[I].CurrentKind, Offline[I].CurrentKind);
    EXPECT_EQ(Online[I].PriorThread, Offline[I].PriorThread);
    EXPECT_EQ(Online[I].PriorKind, Offline[I].PriorKind);
    EXPECT_EQ(Online[I].Detail, Offline[I].Detail);
  }
}

std::set<VarId> warnedVars(const std::vector<RaceWarning> &Warnings) {
  std::set<VarId> Vars;
  for (const RaceWarning &W : Warnings)
    Vars.insert(W.Var);
  return Vars;
}

bool anyDiagContains(const std::vector<Diagnostic> &Diags,
                     const char *Needle) {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

/// The shared determinism workload: NumThreads threads, each writing its
/// own private vars (never racy), all of them hammering a set of shared
/// vars (always racy: no cross-thread synchronization ever orders two
/// writers), plus per-thread mutexes that feed the sync spine without
/// creating happens-before edges between siblings. Main pre-touches every
/// variable before forking so dense ids — and therefore the warned-var
/// set — are identical across runs and shard counts. The pre-touch reads
/// happen-before every fork, so they are never part of a race.
struct DeterminismWorkload {
  static constexpr unsigned NumThreads = 4;
  static constexpr unsigned NumRacy = 24; // spans several routing blocks
  static constexpr int Rounds = 50;

  std::vector<rt::Shared<int>> Private{NumThreads * 4};
  std::vector<rt::Shared<int>> Racy{NumRacy};
  std::vector<rt::Mutex> Locks{NumThreads};

  void run() {
    for (rt::Shared<int> &V : Private)
      FT_READ(V);
    for (rt::Shared<int> &V : Racy)
      FT_READ(V);
    std::vector<rt::Thread> Threads;
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([this, T] {
        for (int I = 0; I != Rounds; ++I) {
          for (unsigned P = 0; P != 4; ++P)
            FT_WRITE(Private[T * 4 + P], I);
          FT_WRITE(Racy[(T * 7 + static_cast<unsigned>(I)) % NumRacy],
                   static_cast<int>(T));
          Locks[T].lock(); // spine traffic, no cross-thread edge
          Locks[T].unlock();
        }
      });
    for (rt::Thread &T : Threads)
      T.join();
  }
};

/// Runs the determinism workload at \p Shards and returns the report
/// after asserting the per-run equivalence contract (feasible capture,
/// offline replay reproduces the online warnings exactly).
rt::OnlineReport runDeterminism(FastTrack &Detector, unsigned Shards,
                                const rt::FaultPlan *Faults = nullptr,
                                bool Supervise = false) {
  rt::OnlineOptions Options;
  Options.Shards = Shards;
  // Small routing blocks so the two-dozen interned vars actually spread
  // across all shards instead of fitting inside one default-sized block.
  Options.ShardBlockVars = 4;
  Options.Faults = Faults;
  // Exact-equivalence runs: no shedding allowed. The supervisor stays on
  // only for the fault-injection tests (shard restarts), with bounds that
  // never shed accesses.
  Options.Degrade.Enabled = false;
  Options.Supervise.Enabled = Supervise;
  Options.Supervise.TickMs = 2;
  Options.Supervise.StallDeadlineMs = 20;
  Options.Supervise.MaxParkMs = 60000;
  Options.Supervise.PressureTicksToDegrade = 1u << 30;

  DeterminismWorkload Workload;
  rt::Engine Engine(Detector, std::move(Options));
  Workload.run();
  rt::OnlineReport Report = Engine.finish();

  EXPECT_TRUE(isFeasible(Report.Captured));
  FastTrack Offline;
  replay(Report.Captured, Offline);
  expectSameWarnings(Detector.warnings(), Offline.warnings());
  return Report;
}

} // namespace

//===----------------------------------------------------------------------===//
// Building blocks: popInto and dispatchRun
//===----------------------------------------------------------------------===//

TEST(EventRing, PopIntoDrainsFifoRegardlessOfSeq) {
  // A routed ring carries raw op indices, which are not consecutive per
  // shard — popInto must drain FIFO without looking at Seq at all.
  rt::EventRing Ring(8);
  const uint64_t Raw[] = {3, 7, 8, 100};
  for (uint64_t S : Raw)
    Ring.push({S, OpKind::Write, static_cast<uint32_t>(S), 1});
  rt::OnlineEvent Out[8];
  ASSERT_EQ(Ring.popInto(Out, 3), 3u);
  for (size_t I = 0; I != 3; ++I) {
    EXPECT_EQ(Out[I].Seq, Raw[I]);
    EXPECT_EQ(Out[I].Thread, 1u);
  }
  EXPECT_TRUE(Ring.hasSpace()) << "popInto must release the slots";
  ASSERT_EQ(Ring.popInto(Out, 8), 1u);
  EXPECT_EQ(Out[0].Seq, 100u);
  EXPECT_TRUE(Ring.empty());
  EXPECT_EQ(Ring.popInto(Out, 8), 0u);
}

TEST(OnlineDriver, DispatchRunMatchesPerEventOffer) {
  // The same pre-admitted stream through offer() (Full role) and
  // dispatchRun() (DispatchOnly role) must leave two FastTracks with
  // identical warnings — batching and devirtualization are pure
  // mechanism.
  TraceBuilder Builder;
  Builder.fork(0, 1);
  for (uint32_t I = 0; I != 64; ++I)
    Builder.wr(0, I % 8).wr(1, I % 8); // racy pairs
  Builder.acq(0, 0).rel(0, 0).join(0, 1);
  Trace Ops = Builder.take();

  ToolContext Capacity;
  Capacity.NumThreads = 4;
  Capacity.NumVars = 16;
  Capacity.NumLocks = 4;
  Capacity.NumVolatiles = 4;

  FastTrack PerEvent;
  OnlineDriver Serial(PerEvent, Capacity);
  for (Operation Op : Ops)
    ASSERT_EQ(Serial.offer(Op), OnlineDriver::DispatchOutcome::Delivered);
  Serial.finish();

  FastTrack Batched;
  OnlineDriverOptions BatchOpts;
  BatchOpts.Role = DriverRole::DispatchOnly;
  BatchOpts.FilterReentrantLocks = false;
  OnlineDriver Runs(Batched, Capacity, BatchOpts);
  std::vector<rt::OnlineEvent> Events;
  for (size_t I = 0; I != Ops.size(); ++I)
    Events.push_back({static_cast<uint64_t>(I), Ops[I].Kind, Ops[I].Target,
                      Ops[I].Thread});
  // Deliver in uneven chunks so runs straddle chunk boundaries.
  size_t Pos = 0;
  for (size_t Chunk : {1u, 7u, 64u, 3u, 1000u}) {
    size_t N = std::min(Chunk, Events.size() - Pos);
    ASSERT_TRUE(Runs.dispatchRun(Events.data() + Pos, N));
    Pos += N;
  }
  ASSERT_EQ(Pos, Events.size());
  Runs.finish();

  EXPECT_GT(PerEvent.warnings().size(), 0u);
  expectSameWarnings(PerEvent.warnings(), Batched.warnings());
  EXPECT_EQ(Serial.dispatched(), Runs.dispatched());
  EXPECT_EQ(Serial.accessesPassed(), Runs.accessesPassed());
}

//===----------------------------------------------------------------------===//
// Cross-shard determinism
//===----------------------------------------------------------------------===//

TEST(OnlineSharding, WarningSetsIdenticalAcrossShardCounts) {
  std::set<VarId> Expected; // the Racy array, whatever ids it interns to
  std::vector<std::set<VarId>> PerShardCount;
  for (unsigned Shards : {1u, 2u, 4u}) {
    FastTrack Detector;
    rt::OnlineReport Report = runDeterminism(Detector, Shards);
    EXPECT_FALSE(Report.Halted);
    EXPECT_EQ(Report.Shards, Shards);
    EXPECT_EQ(Report.DroppedPostHalt, 0u);
    for (const Diagnostic &D : Report.Diags)
      ADD_FAILURE() << "Shards=" << Shards << ": " << toString(D);
    EXPECT_EQ(warnedVars(Detector.warnings()).size(),
              DeterminismWorkload::NumRacy);
    PerShardCount.push_back(warnedVars(Detector.warnings()));
  }
  ASSERT_EQ(PerShardCount.size(), 3u);
  EXPECT_EQ(PerShardCount[0], PerShardCount[1])
      << "Shards=2 must warn on exactly the single-sequencer variables";
  EXPECT_EQ(PerShardCount[0], PerShardCount[2])
      << "Shards=4 must warn on exactly the single-sequencer variables";
}

TEST(OnlineSharding, SyncHeavyWorkloadStaysEquivalent) {
  // A sync-dominated workload: every access bracketed by a lock, plus a
  // deliberately unguarded pair. Each lock event crosses the spine
  // barrier on all four shards, so this leans on the ticket-watermark
  // protocol as hard as a small test can.
  rt::OnlineOptions Options;
  Options.Shards = 4;
  Options.ShardBlockVars = 2; // spread the nine vars over all four shards
  Options.Degrade.Enabled = false;
  Options.Supervise.Enabled = false;

  FastTrack Detector;
  std::vector<rt::Shared<int>> Cells(8);
  rt::Shared<int> Unguarded;
  std::vector<rt::Mutex> Locks(8);

  rt::Engine Engine(Detector, std::move(Options));
  {
    std::vector<rt::Thread> Threads;
    for (unsigned T = 0; T != 4; ++T)
      Threads.emplace_back([&, T] {
        // Before the first acquire: no lock chain can order this write
        // after a sibling's, so the race survives every schedule (the
        // in-loop writes below can all be serialized through the shared
        // locks on a one-core box).
        FT_WRITE(Unguarded, static_cast<int>(T));
        for (int I = 0; I != 100; ++I) {
          unsigned C = (T + static_cast<unsigned>(I)) % 8;
          Locks[C].lock();
          FT_WRITE(Cells[C], I);
          Locks[C].unlock();
        }
      });
    for (rt::Thread &T : Threads)
      T.join();
  }
  rt::OnlineReport Report = Engine.finish();

  EXPECT_FALSE(Report.Halted);
  EXPECT_EQ(Report.Shards, 4u);
  EXPECT_TRUE(isFeasible(Report.Captured));
  FastTrack Offline;
  replay(Report.Captured, Offline);
  expectSameWarnings(Detector.warnings(), Offline.warnings());
  // Exactly the unguarded cell races; the locked cells never do.
  EXPECT_EQ(warnedVars(Detector.warnings()).size(), 1u);
}

//===----------------------------------------------------------------------===//
// Fallback and per-shard resilience
//===----------------------------------------------------------------------===//

namespace {

/// A correct but deliberately non-ShardableTool detector stand-in.
class CountingTool : public Tool {
public:
  const char *name() const override { return "CountingTool"; }
  bool onRead(ThreadId, VarId, size_t) override { return ++Accesses != 0; }
  bool onWrite(ThreadId, VarId, size_t) override { return ++Accesses != 0; }
  uint64_t Accesses = 0;
};

} // namespace

TEST(OnlineSharding, NonShardableToolFallsBackToSingleSequencer) {
  rt::OnlineOptions Options;
  Options.Shards = 4;
  Options.Degrade.Enabled = false;
  Options.Supervise.Enabled = false;

  CountingTool Counter;
  rt::Shared<int> X;
  rt::Engine Engine(Counter, std::move(Options));
  for (int I = 0; I != 10; ++I)
    FT_WRITE(X, I);
  rt::OnlineReport Report = Engine.finish();

  EXPECT_EQ(Report.Shards, 1u);
  EXPECT_FALSE(Report.Halted);
  EXPECT_EQ(Counter.Accesses, 10u);
  EXPECT_TRUE(anyDiagContains(Report.Diags,
                              "does not implement ShardableTool"));
}

TEST(OnlineSharding, StalledShardIsRestartedWhileSiblingsKeepDetecting) {
  // Wedge shard 1's worker mid-stream. The watchdog must restart exactly
  // that worker — the router and the other three shards never stop — and
  // the resumed worker continues from the wedge point, so the session
  // still satisfies the full equivalence contract afterwards.
  rt::FaultPlan Faults;
  Faults.StallShard = 1;
  Faults.StallShardAtRaw = 200;
  Faults.ShardStallsArmed.store(1);

  FastTrack Detector;
  rt::OnlineReport Report =
      runDeterminism(Detector, 4, &Faults, /*Supervise=*/true);

  EXPECT_FALSE(Report.Halted);
  EXPECT_EQ(Report.Shards, 4u);
  EXPECT_EQ(Report.ShardRestarts, 1u);
  EXPECT_EQ(Report.SequencerRestarts, 0u)
      << "the router must never be restarted for a shard's stall";
  EXPECT_EQ(Report.DroppedPostHalt, 0u) << "nothing may be lost";
  EXPECT_TRUE(anyDiagContains(Report.Diags, "shard 1 sequencer stalled"));
  EXPECT_TRUE(anyDiagContains(Report.Diags, "shard 1 sequencer restarted"));
  // Detection stayed complete: every always-racy variable still warned.
  EXPECT_EQ(warnedVars(Detector.warnings()).size(),
            DeterminismWorkload::NumRacy);
}

//===----------------------------------------------------------------------===//
// The SequencerBatch/watermark invariant
//===----------------------------------------------------------------------===//

TEST(OnlineSharding, WatermarkResumesPerBatchWhateverTheBatchSize) {
  // One producer thread → one deterministic ticket sequence. Wedge the
  // router at ticket 40 and let the watchdog restart it, at several
  // SequencerBatch sizes straddling the stall point. The per-batch
  // watermark contract says the successor resumes exactly where the
  // predecessor published: every capture must be byte-identical to the
  // unstalled baseline, with zero events lost or duplicated.
  auto RunOnce = [](size_t Batch, bool Stall) {
    rt::FaultPlan Faults;
    Faults.StallAtTicket = 40;
    Faults.StallsArmed.store(Stall ? 1 : 0);

    rt::OnlineOptions Options;
    Options.Shards = 2;
    Options.ShardBlockVars = 4;
    Options.SequencerBatch = Batch;
    Options.Degrade.Enabled = false;
    Options.Supervise.TickMs = 2;
    Options.Supervise.StallDeadlineMs = 10;
    Options.Supervise.MaxParkMs = 60000;
    Options.Supervise.PressureTicksToDegrade = 1u << 30;
    Options.Faults = &Faults;

    FastTrack Detector;
    std::vector<rt::Shared<int>> Vars(16);
    rt::Mutex M;
    rt::Engine Engine(Detector, std::move(Options));
    for (int I = 0; I != 100; ++I) {
      FT_WRITE(Vars[static_cast<unsigned>(I) % 16], I);
      if (I % 10 == 0) {
        M.lock();
        M.unlock();
      }
    }
    rt::OnlineReport Report = Engine.finish();
    EXPECT_FALSE(Report.Halted);
    EXPECT_EQ(Report.SequencerRestarts, Stall ? 1u : 0u)
        << "batch " << Batch;
    EXPECT_EQ(Report.DroppedPostHalt, 0u) << "batch " << Batch;
    return Report.Captured;
  };

  Trace Baseline = RunOnce(256, /*Stall=*/false);
  ASSERT_GT(Baseline.size(), 0u);
  for (size_t Batch : {1u, 3u, 1024u}) {
    Trace Stalled = RunOnce(Batch, /*Stall=*/true);
    ASSERT_EQ(Stalled.size(), Baseline.size()) << "batch " << Batch;
    for (size_t I = 0; I != Baseline.size(); ++I) {
      EXPECT_EQ(Stalled[I].Kind, Baseline[I].Kind) << "op " << I;
      EXPECT_EQ(Stalled[I].Thread, Baseline[I].Thread) << "op " << I;
      EXPECT_EQ(Stalled[I].Target, Baseline[I].Target) << "op " << I;
    }
  }
}

TEST(OnlineSharding, ThreadChurnIsEquivalentAcrossShardCounts) {
  // Slot recycling happens in the router's admission layer, upstream of
  // the shard split: every shard sees the same fork/join spine whichever
  // incarnation a tid is in, so churn through a tiny slot table must be
  // invisible in the results at every shard count.
  constexpr unsigned Churn = 50;
  std::vector<std::set<VarId>> PerShardCount;
  for (unsigned Shards : {1u, 2u, 4u}) {
    FastTrack Detector;
    std::vector<rt::Shared<int>> Vars(Churn);
    rt::OnlineOptions Options;
    Options.Shards = Shards;
    Options.MaxThreads = 8;
    Options.Supervise.Enabled = false;

    rt::Engine Engine(Detector, Options);
    for (unsigned I = 0; I != Churn; ++I) {
      rt::Thread T([&Vars, I] { FT_WRITE(Vars[I], 1); });
      FT_WRITE(Vars[I], 2); // concurrent with the child: always a race
      T.join();
    }
    rt::OnlineReport Report = Engine.finish();

    EXPECT_FALSE(Report.Halted);
    EXPECT_EQ(Report.Shards, Shards);
    for (const Diagnostic &D : Report.Diags)
      ADD_FAILURE() << "Shards=" << Shards << ": " << toString(D);
    EXPECT_EQ(Report.SlotsAllocated, 2u);
    EXPECT_EQ(Report.ThreadsRecycled, static_cast<uint64_t>(Churn - 1));
    EXPECT_EQ(Detector.warnings().size(), Churn);

    TraceValidatorOptions VOpts;
    VOpts.AllowTidReuse = true;
    EXPECT_TRUE(isFeasible(Report.Captured, VOpts));
    FastTrack Offline;
    replay(Report.Captured, Offline);
    expectSameWarnings(Detector.warnings(), Offline.warnings());
    PerShardCount.push_back(warnedVars(Detector.warnings()));
  }
  ASSERT_EQ(PerShardCount.size(), 3u);
  EXPECT_EQ(PerShardCount[0], PerShardCount[1]);
  EXPECT_EQ(PerShardCount[0], PerShardCount[2]);
}

//===----------------------------------------------------------------------===//
// Memory governance across shards
//===----------------------------------------------------------------------===//

TEST(OnlineSharding, GovernedShardsCompressAndStayEquivalent) {
  // Each shard clone governs its own slice of the shadow space. With no
  // byte budget the governance is compression only — lossless — so the
  // sharded run must stay warning-for-warning equivalent to an offline
  // ungoverned replay of its capture, while the report aggregates real
  // compression work and high-water telemetry from every clone.
  rt::OnlineOptions Options;
  Options.Shards = 4;
  Options.MaxVars = 128 * 1024; // every clone runs a paged table
  Options.Degrade.Memory.Enabled = true;
  Options.Degrade.Memory.MaintainEveryAccesses = 256;
  Options.Degrade.Memory.ColdAgeTicks = 1;
  Options.RingCapacity = 8192;
  Options.Supervise.MaxParkMs = 10000;
  Options.Supervise.PressureTicksToDegrade = 1u << 30;

  constexpr size_t Sweep = 80 * 1024; // ~160 page regions, block-routed
  FastTrack Detector;
  std::vector<rt::Shared<int>> Vars(Sweep);
  rt::Engine Engine(Detector, Options);
  for (size_t I = 0; I != Sweep; ++I)
    FT_WRITE(Vars[I], 1); // write-only sweep: compressible once cold
  {
    rt::Thread A([&] { FT_WRITE(Vars[100], 2); });
    rt::Thread B([&] { FT_WRITE(Vars[100], 3); }); // concurrent with A
    A.join();
    B.join();
  }
  rt::OnlineReport Report = Engine.finish();

  EXPECT_FALSE(Report.Halted);
  EXPECT_EQ(Report.Shards, 4u);
  EXPECT_GT(Report.PagesCompressed, 0u);
  EXPECT_EQ(Report.PagesSummarized, 0u); // lossless mode only
  EXPECT_EQ(Report.BudgetTrips, 0u);
  EXPECT_GT(Report.ShadowBytesHighWater, 0u);
  EXPECT_GE(Report.NumWarnings, 1u);

  FastTrack Offline;
  replay(Report.Captured, Offline);
  expectSameWarnings(Detector.warnings(), Offline.warnings());
}
