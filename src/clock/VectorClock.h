//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector clocks (Mattern 1988), the classical happens-before
/// representation reviewed in Section 2.2 of the paper:
///
///   V1 ⊑ V2   iff  ∀t. V1(t) ≤ V2(t)
///   V1 ⊔ V2   =    λt. max(V1(t), V2(t))
///   ⊥V        =    λt. 0
///   inc_t(V)  =    λu. if u = t then V(u) + 1 else V(u)
///
/// Every O(n)-time operation increments the global ClockStats counters so
/// Table 2 can be regenerated. Entries beyond the stored size are
/// implicitly zero, which keeps clocks for short-lived threads small.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_CLOCK_VECTORCLOCK_H
#define FASTTRACK_CLOCK_VECTORCLOCK_H

#include "clock/ClockStats.h"
#include "clock/Epoch.h"
#include "trace/Ids.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace ft {

/// The clock value type; 32 bits matches the paper's 24-bit packed clocks
/// with headroom (epoch packing asserts the 24-bit bound separately).
using ClockValue = uint32_t;

class VectorClock;
bool operator==(const VectorClock &A, const VectorClock &B);

/// A growable vector clock with implicit-zero semantics past its size.
class VectorClock {
public:
  /// Builds ⊥V. No buffer is allocated until the clock becomes nonzero.
  VectorClock() = default;

  /// Builds ⊥V pre-sized for \p NumThreads threads (counted as one
  /// allocation when nonzero).
  explicit VectorClock(unsigned NumThreads);

  VectorClock(const VectorClock &Other);
  VectorClock &operator=(const VectorClock &Other);
  VectorClock(VectorClock &&Other) noexcept = default;
  VectorClock &operator=(VectorClock &&Other) noexcept = default;

  /// Returns V(t); zero for entries past the stored size.
  ClockValue get(ThreadId T) const {
    return T < Clocks.size() ? Clocks[T] : 0;
  }

  /// Sets V(t) := Clock, growing as needed.
  void set(ThreadId T, ClockValue Clock);

  /// inc_t: increments this clock's own entry for \p T.
  void inc(ThreadId T);

  /// ⊔: joins \p Other into this clock in place. O(n); counted.
  void joinWith(const VectorClock &Other);

  /// ⊑: pointwise ≤ against \p Other. O(n); counted.
  bool leq(const VectorClock &Other) const;

  /// Copies \p Other into this clock. O(n); counted. (operator= does the
  /// same; this spelling documents intent at call sites.)
  void copyFrom(const VectorClock &Other) { *this = Other; }

  /// Zeroes every entry, keeping the buffer for reuse. Not counted: this
  /// models FastTrack recycling a read vector clock (Figure 5 reuses
  /// x.Rvc when a variable becomes read-shared again).
  void resetToBottom() {
    std::fill(Clocks.begin(), Clocks.end(), ClockValue(0));
  }

  /// ≼: epoch-to-vector-clock comparison, c@t ≼ V iff c ≤ V(t). O(1) and
  /// deliberately *not* counted — this is FastTrack's constant-time fast
  /// path.
  template <typename RawT, unsigned TidBits>
  bool epochLeq(BasicEpoch<RawT, TidBits> E) const {
    return E.clock() <= get(E.tid());
  }

  /// Returns the epoch E(t) = V(t)@t of this clock for thread \p T.
  Epoch epochOf(ThreadId T) const { return Epoch::make(T, get(T)); }

  /// Number of stored entries (trailing entries may still be zero).
  unsigned size() const { return Clocks.size(); }

  /// True when every entry is zero.
  bool isBottom() const;

  /// Heap bytes owned by this clock (for memory-overhead accounting).
  size_t memoryBytes() const { return Clocks.capacity() * sizeof(ClockValue); }

  friend bool operator==(const VectorClock &A, const VectorClock &B);

  /// Renders like "<4,8,0>" showing \p MinEntries entries at least.
  std::string str(unsigned MinEntries = 0) const;

private:
  void growTo(unsigned Size);

  std::vector<ClockValue> Clocks;
};

} // namespace ft

#endif // FASTTRACK_CLOCK_VECTORCLOCK_H
