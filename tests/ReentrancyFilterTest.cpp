//===--- ReentrancyFilterTest.cpp - dense/sparse paths, checkpointing -----===//
//
// The filter has two storage regimes — a dense array when thread × lock
// fits under the internal DenseLimit (1 << 20) and a hash map beyond it —
// that must behave identically, and its depths are replay-cursor state
// serialized into checkpoints (framework/Checkpoint.h).
//
//===----------------------------------------------------------------------===//

#include "support/ByteStream.h"
#include "trace/ReentrancyFilter.h"

#include <gtest/gtest.h>

using namespace ft;

namespace {

/// Drives the canonical nesting pattern through \p Filter and checks the
/// outermost-only dispatch contract, whichever storage regime is active.
void expectNestingSemantics(ReentrancyFilter Filter, ThreadId T, LockId M) {
  EXPECT_TRUE(Filter.onAcquire(T, M));   // outermost: dispatch
  EXPECT_FALSE(Filter.onAcquire(T, M));  // re-entrant: filtered
  EXPECT_FALSE(Filter.onAcquire(T, M));
  EXPECT_FALSE(Filter.onRelease(T, M));  // inner releases: filtered
  EXPECT_FALSE(Filter.onRelease(T, M));
  EXPECT_TRUE(Filter.onRelease(T, M));   // outermost release: dispatch
  EXPECT_TRUE(Filter.onAcquire(T, M));   // fresh cycle dispatches again
  EXPECT_TRUE(Filter.onRelease(T, M));
}

} // namespace

TEST(ReentrancyFilter, DenseRegimeNesting) {
  expectNestingSemantics(ReentrancyFilter(4, 4), 2, 3);
}

TEST(ReentrancyFilter, SparseRegimeNesting) {
  // 2^11 threads × 2^10 locks = 2^21 > DenseLimit: hash-map regime, same
  // contract, including ids far beyond any dense table.
  expectNestingSemantics(ReentrancyFilter(1u << 11, 1u << 10), 2000, 1000);
}

TEST(ReentrancyFilter, DefaultConstructedUsesSparseRegime) {
  expectNestingSemantics(ReentrancyFilter(), 7, 9);
}

TEST(ReentrancyFilter, DenseSparseBoundary) {
  // Exactly DenseLimit (1024 × 1024 = 1 << 20) stays dense; one lock more
  // tips into the sparse map. Both must behave identically — exercise the
  // corner ids of each.
  ReentrancyFilter AtLimit(1024, 1024);
  expectNestingSemantics(AtLimit, 1023, 1023);
  ReentrancyFilter PastLimit(1024, 1025);
  expectNestingSemantics(PastLimit, 1023, 1024);
}

TEST(ReentrancyFilter, IndependentThreadsDoNotInterfere) {
  ReentrancyFilter Filter(8, 8);
  EXPECT_TRUE(Filter.onAcquire(0, 5));
  // Same lock, different thread: an infeasible overlap in a real trace,
  // but each thread's depth is tracked independently.
  EXPECT_TRUE(Filter.onAcquire(1, 5));
  EXPECT_FALSE(Filter.onAcquire(0, 5));
  EXPECT_TRUE(Filter.onRelease(1, 5));
  EXPECT_FALSE(Filter.onRelease(0, 5));
  EXPECT_TRUE(Filter.onRelease(0, 5));
}

TEST(ReentrancyFilter, UnmatchedReleaseDispatches) {
  // Infeasible traces dispatch the stray release and let tools cope —
  // in both regimes.
  ReentrancyFilter Dense(4, 4);
  EXPECT_TRUE(Dense.onRelease(1, 1));
  ReentrancyFilter Sparse;
  EXPECT_TRUE(Sparse.onRelease(1, 1));
}

namespace {

/// Snapshot \p Original, restore into a filter with the same geometry,
/// and check both continue identically through a release/acquire tail.
void expectSnapshotRoundTrip(ReentrancyFilter &Original,
                             ReentrancyFilter Restored, ThreadId T,
                             LockId M) {
  ByteWriter Writer;
  Original.snapshot(Writer);
  ByteReader Reader{Writer.bytes()};
  ASSERT_TRUE(Restored.restore(Reader));

  EXPECT_EQ(Original.onRelease(T, M), Restored.onRelease(T, M));
  EXPECT_EQ(Original.onRelease(T, M), Restored.onRelease(T, M));
  EXPECT_EQ(Original.onAcquire(T, M), Restored.onAcquire(T, M));
  EXPECT_EQ(Original.onRelease(T, M), Restored.onRelease(T, M));
}

} // namespace

TEST(ReentrancyFilter, SnapshotRestoreDense) {
  ReentrancyFilter Filter(4, 4);
  EXPECT_TRUE(Filter.onAcquire(1, 2));
  EXPECT_FALSE(Filter.onAcquire(1, 2)); // depth 2 at snapshot time
  expectSnapshotRoundTrip(Filter, ReentrancyFilter(4, 4), 1, 2);
}

TEST(ReentrancyFilter, SnapshotRestoreSparse) {
  ReentrancyFilter Filter(1u << 11, 1u << 10);
  EXPECT_TRUE(Filter.onAcquire(1500, 900));
  EXPECT_FALSE(Filter.onAcquire(1500, 900));
  expectSnapshotRoundTrip(Filter, ReentrancyFilter(1u << 11, 1u << 10), 1500,
                          900);
}

TEST(ReentrancyFilter, RestoreRejectsGarbage) {
  // A corrupt length field must fail cleanly, not allocate gigabytes.
  ByteWriter Writer;
  Writer.u32(16);
  Writer.u64(~uint64_t(0)); // absurd dense size
  ReentrancyFilter Filter;
  ByteReader Reader{Writer.bytes()};
  EXPECT_FALSE(Filter.restore(Reader));

  ReentrancyFilter Truncated;
  ByteReader Empty{std::string_view("")};
  EXPECT_FALSE(Truncated.restore(Empty));
}
