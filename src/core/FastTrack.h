//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FASTTRACK: the efficient and precise dynamic race detector of Flanagan
/// and Freund (PLDI 2009) — the primary contribution this repository
/// reproduces.
///
/// FastTrack replaces DJIT+'s per-variable read/write vector clocks with
/// an adaptive representation. All writes to a variable are totally
/// ordered (while no race has been detected), so the last write epoch
/// c@t suffices; reads are usually totally ordered too, so the read state
/// holds an epoch and inflates to a full vector clock only when reads are
/// genuinely concurrent (read-shared data), deflating back to an epoch at
/// the next write. The access rules of Figure 2, in the notation used
/// throughout this file:
///
///   [FT READ SAME EPOCH]   Rx = E(t)                        (63.4 % reads)
///   [FT READ SHARED]       Rx ∈ VC: Wx ≼ Ct; Rx(t) := Ct(t) (20.8 %)
///   [FT READ EXCLUSIVE]    Rx ≼ Ct; Wx ≼ Ct; Rx := E(t)     (15.7 %)
///   [FT READ SHARE]        inflate Rx to a VC                ( 0.1 %)
///   [FT WRITE SAME EPOCH]  Wx = E(t)                        (71.0 % writes)
///   [FT WRITE EXCLUSIVE]   Rx ≼ Ct; Wx ≼ Ct; Wx := E(t)     (28.9 %)
///   [FT WRITE SHARED]      Rx ⊑ Ct (slow); Wx := E(t); Rx := ⊥e (0.1 %)
///
/// Every rule except the two "shared-write/share" slow paths is O(1).
/// The synchronization rules (Figure 3) live in VectorClockToolBase.
///
/// The detector is parameterized by the epoch representation (Section 4:
/// "switching to 64-bit epochs would enable FastTrack to handle large
/// thread identifiers or clock values"):
///   - FastTrack   — 32-bit epochs, up to 255 threads (the paper's
///                   default layout);
///   - FastTrack64 — 64-bit epochs, up to 65,535 threads.
/// The top tid of each layout is reserved as the shadow table's
/// READ_SHARED handle tag (shadow/ShadowTable.h), extending the paper's
/// all-ones sentinel into a whole tag space.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_CORE_FASTTRACK_H
#define FASTTRACK_CORE_FASTTRACK_H

#include "framework/ShardableTool.h"
#include "framework/VectorClockToolBase.h"
#include "shadow/ShadowTable.h"

namespace ft {

/// Firing counts for each FastTrack rule, reproducing the frequency
/// annotations of Figure 2 (experiment E1).
struct FastTrackRuleStats {
  uint64_t ReadSameEpoch = 0;
  uint64_t ReadShared = 0;
  uint64_t ReadExclusive = 0;
  uint64_t ReadShare = 0;
  uint64_t WriteSameEpoch = 0;
  uint64_t WriteExclusive = 0;
  uint64_t WriteShared = 0;

  uint64_t reads() const {
    return ReadSameEpoch + ReadShared + ReadExclusive + ReadShare;
  }
  uint64_t writes() const {
    return WriteSameEpoch + WriteExclusive + WriteShared;
  }
  /// Operations handled by constant-time paths (everything except the
  /// Share allocation and the Shared write comparison).
  uint64_t fastPathOps() const {
    return reads() + writes() - ReadShare - WriteShared;
  }

  /// Pointwise accumulation (sharded replay folds per-shard counters).
  FastTrackRuleStats &operator+=(const FastTrackRuleStats &Other) {
    ReadSameEpoch += Other.ReadSameEpoch;
    ReadShared += Other.ReadShared;
    ReadExclusive += Other.ReadExclusive;
    ReadShare += Other.ReadShare;
    WriteSameEpoch += Other.WriteSameEpoch;
    WriteExclusive += Other.WriteExclusive;
    WriteShared += Other.WriteShared;
    return *this;
  }
};

/// Configuration knobs. The defaults implement the published algorithm;
/// the flags exist for the ablation study (experiment E8) and the
/// same-epoch extension discussed in Section 3.
struct FastTrackOptions {
  /// Rule [FT READ/WRITE SAME EPOCH]. Disabling forces every access down
  /// the general path.
  bool SameEpochFastPath = true;

  /// Epoch representation for read histories. Disabling keeps every
  /// variable's read state as a full vector clock from the first read —
  /// i.e. DJIT+'s representation for reads.
  bool EpochReads = true;

  /// The extension mentioned in Section 3: treat a same-epoch read of
  /// read-shared data (Rx ∈ VC and Rx(t) = Ct(t)) as a same-epoch hit,
  /// covering 78 % of reads like DJIT+'s same-epoch rule.
  bool ExtendedSharedSameEpoch = false;

  /// Shadow-memory governance (shadow/ShadowPolicy.h): page temperature
  /// tracking, lossless cold-page compression, and watermark-driven
  /// summarization, all keyed deterministically on dispatched accesses.
  /// Inert by default; the online driver installs the session policy via
  /// configureShadowPolicy before begin().
  ShadowMemoryPolicy Memory;

  /// Renumber side-store handles in page order before every snapshot, so
  /// checkpoint restore re-assigns them sequentially (sequential side-
  /// store I/O). Serialized images never encode handles, so this changes
  /// no image byte — it is purely the restore-side access pattern.
  bool SortSideStoreOnSnapshot = true;
};

/// The FastTrack analysis over epoch representation \p EpochT. Accesses
/// touch only the accessed variable's VarState plus the thread clocks,
/// and the clocks evolve by the Figure 3 rules alone — so the detector
/// shards by variable under spine-driven parallel replay.
template <typename EpochT>
class BasicFastTrack : public VectorClockToolBase, public ShardableTool {
public:
  explicit BasicFastTrack(FastTrackOptions Options = FastTrackOptions())
      : Options(Options) {}

  const char *name() const override {
    return sizeof(EpochT) == 8 ? "FastTrack64" : "FastTrack";
  }

  void begin(const ToolContext &Context) override;
  bool onRead(ThreadId T, VarId X, size_t OpIndex) override;
  bool onWrite(ThreadId T, VarId X, size_t OpIndex) override;
  size_t shadowBytes() const override;

  /// Adopts \p Policy for the shadow table (applied at the next begin(),
  /// and inherited by shard clones through Options).
  bool configureShadowPolicy(const ShadowMemoryPolicy &Policy) override {
    Options.Memory = Policy;
    return true;
  }
  ShadowGovernorStats shadowGovernorStats() const override {
    return Shadow.governorStats();
  }

  const FastTrackRuleStats &ruleStats() const { return Rules; }

  /// Number of read states currently inflated to vector clocks.
  uint64_t inflatedReadStates() const;

  // ShardableTool: FastTrack's sync behaviour is exactly Figure 3, so
  // shard workers run off the precomputed sync spine.
  ShardMode shardMode() const override { return ShardMode::SpineDriven; }
  std::unique_ptr<Tool> cloneForShard() const override {
    return std::make_unique<BasicFastTrack<EpochT>>(Options);
  }
  void mergeShard(Tool &ShardTool) override {
    Rules += static_cast<BasicFastTrack<EpochT> &>(ShardTool).Rules;
  }

  // Checkpoint hooks: the full analysis state σ = (C, L, R, W) plus the
  // Figure 2 rule counters, so a resumed replay continues bit-identically
  // (framework/Checkpoint.h).
  bool supportsCheckpoint() const override { return true; }
  void snapshotShadow(ByteWriter &Writer) const override;
  bool restoreShadow(ByteReader &Reader) override;

  /// Shadow pages currently faulted in (the table's memory footprint is
  /// proportional to these, not to NumVars — see shadow/ShadowTable.h).
  size_t residentShadowPages() const { return Shadow.residentPages(); }

private:
  /// Per-variable shadow state (Figure 5's VarState) lives in the paged
  /// two-level ShadowTable: the hot pair (write epoch W, read epoch R)
  /// packed side by side in on-demand pages, with read-shared vector
  /// clocks hoisted into the table's side store. When a variable is
  /// read-shared, R carries a tagged side-store handle in place of an
  /// epoch (Shadow.isInflated/clockFor); inflation moves a handle, not a
  /// clock, and the side store recycles both handles and clock buffers
  /// across inflate → deflate cycles.
  ///
  /// **Recycled thread slots.** The online engine reuses the dense id of
  /// a fully joined thread, so W, R, and side-store clock entries may
  /// name a tid whose thread is dead — a *stale epoch* c@t. No rule here
  /// changes: the fork that reincarnates tid t joins the slot's clock
  /// (which still dominates the dead lifetime's final clock f, own entry
  /// already at f+1 from the join) into the successor, so c ≼ C holds
  /// for every clock that synchronized with the dead thread, and the
  /// successor's fresh epochs start at (f+1)@t — never equal to a stale
  /// one. The same argument covers dead-slot entries inside read-shared
  /// side-store VCs. Proved against the exact HB oracle in FastTrackTest
  /// (RecycledSlot* cases) and ShadowTableTest.
  using Slot = typename ShadowTable<EpochT>::Slot;

  /// E(t) = Ct(t)@t, packed into this instantiation's epoch layout.
  EpochT epochOf(ThreadId T) const { return EpochT::make(T, currentClock(T)); }

  void reportAccessRace(ThreadId T, VarId X, size_t OpIndex, OpKind Kind,
                        ThreadId PriorThread, OpKind PriorKind,
                        const char *Detail);
  /// Finds the reader recorded in Rvc that is concurrent with Ct.
  ThreadId concurrentReader(const VectorClock &Rvc, ThreadId T) const;

  /// Counts down dispatched accesses to the next governance maintenance
  /// tick (0 = governance off). Access-keyed — never wall clock — so a
  /// degraded capture replays through identical table transitions.
  uint64_t MaintainCountdown = 0;

  FastTrackOptions Options;
  ShadowTable<EpochT> Shadow;
  FastTrackRuleStats Rules;
};

/// The paper's default: packed 32-bit epochs (8-bit tid, 24-bit clock).
using FastTrack = BasicFastTrack<Epoch>;

/// The Section 4 extension: 64-bit epochs for programs with more than
/// 255 threads (16-bit tid, 48-bit clock).
using FastTrack64 = BasicFastTrack<Epoch64>;

extern template class BasicFastTrack<Epoch>;
extern template class BasicFastTrack<Epoch64>;

} // namespace ft

#endif // FASTTRACK_CORE_FASTTRACK_H
