//===----------------------------------------------------------------------===//
//
// Experiment E5 — Table 3: fine-grain versus coarse-grain analysis for
// DJIT+ and FastTrack: shadow-memory footprint, slowdown, and the
// precision cost (spurious warnings) of coarse granularity.
//
// Paper shape: FastTrack needs roughly a third of DJIT+'s fine-grain
// memory (2.8x vs 7.9x overhead); coarse granularity roughly halves
// memory and yields a ~50% speedup for both tools, at the price of
// spurious warnings on most benchmarks.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FastTrack.h"
#include "detectors/DjitPlus.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace ft;
using namespace ft::bench;

namespace {

struct Cell {
  size_t Bytes;
  double Seconds;
  size_t Warnings;
};

template <typename ToolT>
Cell measure(const Trace &T, Granularity Gran) {
  ToolT Checker;
  ReplayOptions Options;
  Options.Gran = Gran;
  ReplayResult Result = timedReplay(T, Checker, Options);
  return {Result.ShadowBytes, Result.Seconds, Checker.warnings().size()};
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("bench_table3_granularity", argc, argv);
  banner("Table 3: fine vs coarse granularity (DJIT+ and FastTrack)");

  Table Out;
  Out.addHeader({"Program", "DJIT+ fine", "FT fine", "DJIT+ coarse",
                 "FT coarse", "Time D-fine", "Time FT-fine", "Time D-coarse",
                 "Time FT-coarse", "FT warn f/c"});

  uint64_t Bytes[4] = {0, 0, 0, 0};
  double Seconds[4] = {0, 0, 0, 0};

  for (const Workload &W : benchmarkSuite()) {
    Trace T = W.Generate(/*Seed=*/1, sizeFactor());
    Cell DjitFine = measure<DjitPlus>(T, Granularity::Fine);
    Cell FtFine = measure<FastTrack>(T, Granularity::Fine);
    Cell DjitCoarse = measure<DjitPlus>(T, Granularity::Coarse);
    Cell FtCoarse = measure<FastTrack>(T, Granularity::Coarse);

    Bytes[0] += DjitFine.Bytes;
    Bytes[1] += FtFine.Bytes;
    Bytes[2] += DjitCoarse.Bytes;
    Bytes[3] += FtCoarse.Bytes;
    Seconds[0] += DjitFine.Seconds;
    Seconds[1] += FtFine.Seconds;
    Seconds[2] += DjitCoarse.Seconds;
    Seconds[3] += FtCoarse.Seconds;

    Out.addRow({W.Name, humanBytes(DjitFine.Bytes), humanBytes(FtFine.Bytes),
                humanBytes(DjitCoarse.Bytes), humanBytes(FtCoarse.Bytes),
                fixed(DjitFine.Seconds * 1e3, 1) + "ms",
                fixed(FtFine.Seconds * 1e3, 1) + "ms",
                fixed(DjitCoarse.Seconds * 1e3, 1) + "ms",
                fixed(FtCoarse.Seconds * 1e3, 1) + "ms",
                std::to_string(FtFine.Warnings) + "/" +
                    std::to_string(FtCoarse.Warnings)});
  }

  Out.addSeparator();
  Out.addRow({"Total", humanBytes(Bytes[0]), humanBytes(Bytes[1]),
              humanBytes(Bytes[2]), humanBytes(Bytes[3]),
              fixed(Seconds[0] * 1e3, 1) + "ms",
              fixed(Seconds[1] * 1e3, 1) + "ms",
              fixed(Seconds[2] * 1e3, 1) + "ms",
              fixed(Seconds[3] * 1e3, 1) + "ms", ""});
  std::fputs(Out.render().c_str(), stdout);

  std::printf("\nFine-grain shadow memory: FastTrack/DJIT+ = %.2f "
              "(paper: 2.8x/7.9x ~= 0.35).\n",
              Bytes[0] ? double(Bytes[1]) / double(Bytes[0]) : 0.0);
  std::printf("Coarse/fine memory, DJIT+: %.2f, FastTrack: %.2f "
              "(paper: roughly half).\n",
              Bytes[0] ? double(Bytes[2]) / double(Bytes[0]) : 0.0,
              Bytes[1] ? double(Bytes[3]) / double(Bytes[1]) : 0.0);
  std::printf("Coarse granularity trades warnings for footprint: the last "
              "column shows FastTrack gaining spurious warnings.\n");
  const char *Cols[4] = {"djit_fine", "ft_fine", "djit_coarse", "ft_coarse"};
  for (int I = 0; I != 4; ++I) {
    Report.metric(std::string(Cols[I]) + "_shadow_bytes", double(Bytes[I]),
                  "B");
    Report.metric(std::string(Cols[I]) + "_seconds", Seconds[I], "s");
  }
  return Report.write() ? 0 : 1;
}
