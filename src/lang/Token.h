//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of the MiniConc language — the small concurrent language whose
/// interpreter stands in for the paper's JVM + RoadRunner substrate (see
/// DESIGN.md, substitution table). Programs written in MiniConc are
/// executed by a deterministic scheduler that emits exactly the event
/// stream (Figure 1) the race detectors analyze.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_LANG_TOKEN_H
#define FASTTRACK_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace ft::lang {

/// Token kinds. Keyword tokens mirror the surface syntax:
///
/// \code
///   shared x; shared a[8]; volatile flag; lock m; barrier b(2);
///   fn worker(i) { local s = 0; sync (m) { x = x + i; } ... }
///   sync (m) { wait m; }  sync (m) { notify m; }  notifyall m;
///   fn main() { let t = spawn worker(1); join t; print x; }
/// \endcode
enum class TokenKind : uint8_t {
  // Literals and identifiers.
  Identifier,
  IntLiteral,

  // Keywords.
  KwShared,
  KwVolatile,
  KwLock,
  KwBarrier,
  KwFn,
  KwLocal,
  KwLet,
  KwIf,
  KwElse,
  KwWhile,
  KwSync,
  KwAtomic,
  KwSpawn,
  KwJoin,
  KwAwait,
  KwWait,
  KwNotify,
  KwNotifyAll,
  KwPrint,
  KwReturn,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,

  // Operators.
  Assign,   // =
  Plus,     // +
  Minus,    // -
  Star,     // *
  Slash,    // /
  Percent,  // %
  Lt,       // <
  Le,       // <=
  Gt,       // >
  Ge,       // >=
  EqEq,     // ==
  NotEq,    // !=
  AndAnd,   // &&
  OrOr,     // ||
  Not,      // !

  Eof,
  Error, ///< Lexical error; Text holds the message.
};

/// Returns a human-readable name for diagnostics, e.g. "')'" or
/// "identifier".
const char *tokenKindName(TokenKind Kind);

/// One lexed token with its source position (1-based).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;   ///< Identifier name, literal spelling, or error.
  int64_t IntValue = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace ft::lang

#endif // FASTTRACK_LANG_TOKEN_H
