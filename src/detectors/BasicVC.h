//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BASICVC: the traditional vector-clock race detector of Section 5.1 —
/// "a simple VC-based race detector that maintains a read and a write VC
/// for each memory location and performs at least one VC comparison on
/// every memory access." It is the fully-general, fully-slow baseline
/// FastTrack is roughly 10x faster than.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_DETECTORS_BASICVC_H
#define FASTTRACK_DETECTORS_BASICVC_H

#include "framework/ShardableTool.h"
#include "framework/VectorClockToolBase.h"

namespace ft {

/// Read/write checks without any fast path:
///
///   read  rd(t,x):  check Wx ⊑ Ct;             Rx(t) := Ct(t)
///   write wr(t,x):  check Wx ⊑ Ct and Rx ⊑ Ct; Wx(t) := Ct(t)
///
/// Sync behaviour is pure Figure 3, so BasicVC shards by variable under
/// spine-driven parallel replay (no counters to merge).
class BasicVC : public VectorClockToolBase, public ShardableTool {
public:
  const char *name() const override { return "BasicVC"; }

  void begin(const ToolContext &Context) override;
  bool onRead(ThreadId T, VarId X, size_t OpIndex) override;
  bool onWrite(ThreadId T, VarId X, size_t OpIndex) override;
  size_t shadowBytes() const override;

  // ShardableTool.
  ShardMode shardMode() const override { return ShardMode::SpineDriven; }
  std::unique_ptr<Tool> cloneForShard() const override {
    return std::make_unique<BasicVC>();
  }
  void mergeShard(Tool &) override {}

private:
  /// Finds a thread whose entry of \p Prior exceeds Ct, i.e. a concurrent
  /// prior access, for error reporting.
  ThreadId conflictingThread(const VectorClock &Prior, ThreadId T) const;

  struct VarState {
    VectorClock R;
    VectorClock W;
  };
  std::vector<VarState> Vars;
};

} // namespace ft

#endif // FASTTRACK_DETECTORS_BASICVC_H
