#include "support/MemoryTracker.h"

using namespace ft;

MemoryTracker &ft::globalMemoryTracker() {
  static MemoryTracker Tracker;
  return Tracker;
}
