#include "framework/ToolGroup.h"

#include <exception>
#include <string>

using namespace ft;

ToolGroup::ToolGroup(std::vector<Tool *> Tools) {
  for (Tool *T : Tools)
    addMember(*T);
}

void ToolGroup::addMember(Tool &Member) {
  Members.push_back({&Member, false, 0});
}

size_t ToolGroup::activeMembers() const {
  size_t N = 0;
  for (const Member &M : Members)
    N += !M.Quarantined;
  return N;
}

size_t ToolGroup::shadowBytes() const {
  size_t Bytes = 0;
  for (const Member &M : Members)
    if (!M.Quarantined)
      Bytes += M.T->shadowBytes();
  return Bytes;
}

void ToolGroup::quarantine(Member &M, size_t OpIndex, const char *What) {
  M.Quarantined = true;
  Diags.push_back({StatusCode::ToolFault, Severity::Warning, 0, OpIndex,
                   "tool '" + std::string(M.T->name()) +
                       "' threw from an event handler: " + What +
                       "; quarantined (" + std::to_string(activeMembers()) +
                       " member(s) still detecting)"});
}

template <typename FnT>
void ToolGroup::guarded(Member &M, size_t OpIndex, FnT &&Fn) {
  try {
    Fn();
  } catch (const std::exception &E) {
    quarantine(M, OpIndex, E.what());
  } catch (...) {
    quarantine(M, OpIndex, "non-standard exception");
  }
}

void ToolGroup::begin(const ToolContext &Context) {
  for (Member &M : Members)
    if (!M.Quarantined)
      guarded(M, NoOpIndex, [&] { M.T->begin(Context); });
}

void ToolGroup::end() {
  // A quarantined member's end() is skipped too: its shadow state is
  // whatever the throw left behind.
  for (Member &M : Members)
    if (!M.Quarantined)
      guarded(M, NoOpIndex, [&] { M.T->end(); });
  adoptNewWarnings();
}

bool ToolGroup::onRead(ThreadId T, VarId X, size_t OpIndex) {
  bool Pass = false;
  for (Member &M : Members)
    if (!M.Quarantined)
      guarded(M, OpIndex, [&] { Pass = M.T->onRead(T, X, OpIndex) || Pass; });
  adoptNewWarnings();
  // With no member left, never filter the stream (pass everything).
  return Pass || activeMembers() == 0;
}

bool ToolGroup::onWrite(ThreadId T, VarId X, size_t OpIndex) {
  bool Pass = false;
  for (Member &M : Members)
    if (!M.Quarantined)
      guarded(M, OpIndex, [&] { Pass = M.T->onWrite(T, X, OpIndex) || Pass; });
  adoptNewWarnings();
  return Pass || activeMembers() == 0;
}

void ToolGroup::onAcquire(ThreadId T, LockId L, size_t OpIndex) {
  for (Member &M : Members)
    if (!M.Quarantined)
      guarded(M, OpIndex, [&] { M.T->onAcquire(T, L, OpIndex); });
  adoptNewWarnings();
}

void ToolGroup::onRelease(ThreadId T, LockId L, size_t OpIndex) {
  for (Member &M : Members)
    if (!M.Quarantined)
      guarded(M, OpIndex, [&] { M.T->onRelease(T, L, OpIndex); });
  adoptNewWarnings();
}

void ToolGroup::onFork(ThreadId T, ThreadId U, size_t OpIndex) {
  for (Member &M : Members)
    if (!M.Quarantined)
      guarded(M, OpIndex, [&] { M.T->onFork(T, U, OpIndex); });
  adoptNewWarnings();
}

void ToolGroup::onJoin(ThreadId T, ThreadId U, size_t OpIndex) {
  for (Member &M : Members)
    if (!M.Quarantined)
      guarded(M, OpIndex, [&] { M.T->onJoin(T, U, OpIndex); });
  adoptNewWarnings();
}

void ToolGroup::onVolatileRead(ThreadId T, VolatileId V, size_t OpIndex) {
  for (Member &M : Members)
    if (!M.Quarantined)
      guarded(M, OpIndex, [&] { M.T->onVolatileRead(T, V, OpIndex); });
  adoptNewWarnings();
}

void ToolGroup::onVolatileWrite(ThreadId T, VolatileId V, size_t OpIndex) {
  for (Member &M : Members)
    if (!M.Quarantined)
      guarded(M, OpIndex, [&] { M.T->onVolatileWrite(T, V, OpIndex); });
  adoptNewWarnings();
}

void ToolGroup::onBarrier(const std::vector<ThreadId> &Threads,
                          size_t OpIndex) {
  for (Member &M : Members)
    if (!M.Quarantined)
      guarded(M, OpIndex, [&] { M.T->onBarrier(Threads, OpIndex); });
  adoptNewWarnings();
}

void ToolGroup::adoptNewWarnings() {
  for (Member &M : Members) {
    const std::vector<RaceWarning> &W = M.T->warnings();
    if (M.WarningCursor == W.size())
      continue;
    std::vector<RaceWarning> Fresh(W.begin() +
                                       static_cast<ptrdiff_t>(M.WarningCursor),
                                   W.end());
    adoptWarnings(Fresh);
    M.WarningCursor = W.size();
  }
}
