//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ATOMIZER-style dynamic atomicity checker (Flanagan and Freund, 2008),
/// based on Lipton's theory of reduction rather than happens-before
/// cycles. An atomic block is reducible when its operations match the
/// pattern  R* [N] L*  — right movers (lock acquires), at most one
/// non-mover (a potentially racy access), then left movers (lock
/// releases). Lock-protected and thread-local accesses are both-movers
/// and fit anywhere.
///
/// Atomizer classifies accesses with an embedded Eraser instance — which
/// is why the paper's composition table has no "ERASER prefilter" column
/// for Atomizer (footnote 7: it already uses Eraser internally).
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_CHECKERS_ATOMIZER_H
#define FASTTRACK_CHECKERS_ATOMIZER_H

#include "checkers/TransactionalClockBase.h"
#include "detectors/Eraser.h"

namespace ft {

/// The reduction-based atomicity checker.
class Atomizer : public Tool {
public:
  const char *name() const override { return "Atomizer"; }

  void begin(const ToolContext &Context) override;
  bool onRead(ThreadId T, VarId X, size_t OpIndex) override;
  bool onWrite(ThreadId T, VarId X, size_t OpIndex) override;
  void onAcquire(ThreadId T, LockId M, size_t OpIndex) override;
  void onRelease(ThreadId T, LockId M, size_t OpIndex) override;
  void onVolatileRead(ThreadId T, VolatileId V, size_t OpIndex) override;
  void onVolatileWrite(ThreadId T, VolatileId V, size_t OpIndex) override;
  void onBarrier(const std::vector<ThreadId> &Threads,
                 size_t OpIndex) override;
  void onAtomicBegin(ThreadId T, size_t OpIndex) override;
  void onAtomicEnd(ThreadId T, size_t OpIndex) override;
  size_t shadowBytes() const override;

  const std::vector<CheckerViolation> &violations() const {
    return Violations;
  }

private:
  /// Reduction phase within an atomic block.
  enum class Phase : uint8_t {
    PreCommit, ///< Only right movers / both movers so far.
    PostCommit ///< A left mover or non-mover has occurred.
  };

  struct TxnState {
    bool Active = false;
    bool Violated = false;
    unsigned Depth = 0; ///< Nesting depth; blocks flatten.
    size_t BeginIndex = 0;
    Phase P = Phase::PreCommit;
  };

  void access(ThreadId T, VarId X, size_t OpIndex, bool IsWrite);
  void reportViolation(ThreadId T, size_t OpIndex, std::string Detail);

  Eraser RaceApprox; ///< Classifies accesses as movers vs non-movers.
  std::vector<TxnState> Txns;
  std::vector<CheckerViolation> Violations;
};

} // namespace ft

#endif // FASTTRACK_CHECKERS_ATOMIZER_H
