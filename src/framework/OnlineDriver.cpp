#include "framework/OnlineDriver.h"

using namespace ft;

OnlineDriver::OnlineDriver(Tool &Checker, const ToolContext &Capacity,
                           OnlineDriverOptions Options)
    : Checker(Checker), Capacity(Capacity), Options(std::move(Options)),
      Reentrancy(Capacity.NumThreads, Capacity.NumLocks) {
  Checker.begin(Capacity);
}

void OnlineDriver::halt(std::string Message) {
  Diagnostic D;
  D.Code = StatusCode::ResourceExhausted;
  D.Sev = Severity::Error;
  D.OpIndex = Raw;
  D.Message = std::move(Message);
  Diags.push_back(std::move(D));
  Halted = true;
}

void OnlineDriver::drainWarnings() {
  const std::vector<RaceWarning> &Ws = Checker.warnings();
  while (SinkCursor < Ws.size()) {
    if (Options.WarningSink)
      Options.WarningSink(Ws[SinkCursor]);
    ++SinkCursor;
  }
}

bool OnlineDriver::dispatch(const Operation &Op) {
  if (Halted)
    return false;

  // Capacity checks before the index is consumed: a rejected operation is
  // not part of the stream (the flight recorder must drop it too, so a
  // halted run's capture stays replayable up to the halt point).
  if (Op.Thread >= Capacity.NumThreads) {
    halt("thread id " + std::to_string(Op.Thread) +
         " exceeds declared capacity (" +
         std::to_string(Capacity.NumThreads) + " threads)");
    return false;
  }
  switch (Op.Kind) {
  case OpKind::Read:
  case OpKind::Write:
    if (Op.Target >= Capacity.NumVars) {
      halt("variable id " + std::to_string(Op.Target) +
           " exceeds declared capacity (" + std::to_string(Capacity.NumVars) +
           " variables)");
      return false;
    }
    break;
  case OpKind::Acquire:
  case OpKind::Release:
    if (Op.Target >= Capacity.NumLocks) {
      halt("lock id " + std::to_string(Op.Target) +
           " exceeds declared capacity (" + std::to_string(Capacity.NumLocks) +
           " locks)");
      return false;
    }
    break;
  case OpKind::Fork:
  case OpKind::Join:
    if (Op.Target >= Capacity.NumThreads) {
      halt("thread id " + std::to_string(Op.Target) +
           " exceeds declared capacity (" +
           std::to_string(Capacity.NumThreads) + " threads)");
      return false;
    }
    break;
  case OpKind::VolatileRead:
  case OpKind::VolatileWrite:
    if (Op.Target >= Capacity.NumVolatiles) {
      halt("volatile id " + std::to_string(Op.Target) +
           " exceeds declared capacity (" +
           std::to_string(Capacity.NumVolatiles) + " volatiles)");
      return false;
    }
    break;
  case OpKind::Barrier:
    // Barrier thread sets live in a Trace side table; an online stream
    // has none. The in-process runtime never emits barriers.
    halt("barrier operations cannot be dispatched online");
    return false;
  case OpKind::AtomicBegin:
  case OpKind::AtomicEnd:
    break;
  }

  size_t I = Raw++;
  switch (Op.Kind) {
  case OpKind::Read:
    ++Dispatched;
    AccessesPassed += Checker.onRead(Op.Thread, Op.Target, I);
    break;
  case OpKind::Write:
    ++Dispatched;
    AccessesPassed += Checker.onWrite(Op.Thread, Op.Target, I);
    break;
  case OpKind::Acquire:
    if (Options.FilterReentrantLocks &&
        !Reentrancy.onAcquire(Op.Thread, Op.Target))
      break;
    ++Dispatched;
    Checker.onAcquire(Op.Thread, Op.Target, I);
    break;
  case OpKind::Release:
    if (Options.FilterReentrantLocks &&
        !Reentrancy.onRelease(Op.Thread, Op.Target))
      break;
    ++Dispatched;
    Checker.onRelease(Op.Thread, Op.Target, I);
    break;
  case OpKind::Fork:
    ++Dispatched;
    Checker.onFork(Op.Thread, Op.Target, I);
    break;
  case OpKind::Join:
    ++Dispatched;
    Checker.onJoin(Op.Thread, Op.Target, I);
    break;
  case OpKind::VolatileRead:
    ++Dispatched;
    Checker.onVolatileRead(Op.Thread, Op.Target, I);
    break;
  case OpKind::VolatileWrite:
    ++Dispatched;
    Checker.onVolatileWrite(Op.Thread, Op.Target, I);
    break;
  case OpKind::AtomicBegin:
    ++Dispatched;
    Checker.onAtomicBegin(Op.Thread, I);
    break;
  case OpKind::AtomicEnd:
    ++Dispatched;
    Checker.onAtomicEnd(Op.Thread, I);
    break;
  case OpKind::Barrier:
    break; // unreachable: rejected above
  }

  drainWarnings();
  return true;
}

void OnlineDriver::finish() {
  if (Finished)
    return;
  Finished = true;
  Checker.end();
  drainWarnings();
}
