//===----------------------------------------------------------------------===//
//
// Native port of examples/programs/bounded_buffer.mc: a one-slot bounded
// buffer built from a mutex and a condition variable, running on real
// std::threads and race-checked *online* — no trace file, no interpreter.
// Race-free on every schedule; the online run must report zero warnings,
// and the flight-recorder capture must agree with an offline replay.
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "framework/Replay.h"
#include "runtime/Instrument.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace ft;
namespace rt = ft::runtime;

namespace {

struct BoundedBuffer {
  rt::Mutex M;
  rt::CondVar CV;
  rt::Shared<int> Slot;
  rt::Shared<int> Full;
  rt::Shared<int> Consumed;
  /// Producer-confined statistics: only the producer writes it and main
  /// reads it after join, so it is race-free by construction and uses
  /// the uninstrumented Unchecked<T> — zero events, zero overhead (see
  /// docs/TOOL_AUTHORING.md, "Eliding instrumentation by hand").
  rt::Unchecked<int> Produced;

  void producer(int Items) {
    for (int I = 1; I <= Items; ++I) {
      std::lock_guard<rt::Mutex> Guard(M);
      CV.wait(M, [this] { return FT_READ(Full) == 0; });
      FT_WRITE(Slot, I * 10);
      FT_WRITE(Full, 1);
      Produced.write(Produced.read() + 1);
      CV.notifyAll();
    }
  }

  void consumer(int Items) {
    for (int I = 0; I < Items; ++I) {
      std::lock_guard<rt::Mutex> Guard(M);
      CV.wait(M, [this] { return FT_READ(Full) == 1; });
      FT_WRITE(Consumed, FT_READ(Consumed) + FT_READ(Slot));
      FT_WRITE(Full, 0);
      CV.notifyAll();
    }
  }
};

bool sameWarnings(const std::vector<RaceWarning> &A,
                  const std::vector<RaceWarning> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].Var != B[I].Var || A[I].OpIndex != B[I].OpIndex ||
        A[I].CurrentThread != B[I].CurrentThread ||
        A[I].CurrentKind != B[I].CurrentKind ||
        A[I].PriorThread != B[I].PriorThread ||
        A[I].PriorKind != B[I].PriorKind || A[I].Detail != B[I].Detail)
      return false;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("native bounded buffer — online race detection\n"
              "=============================================\n\n");

  FastTrack Detector;
  rt::OnlineOptions Options;
  Options.CapturePath = "native_bounded_buffer.trc";
  Options.OnWarning = [](const RaceWarning &W) {
    std::printf("  ONLINE WARNING: %s\n", toString(W).c_str());
  };
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--degrade") == 0 && I + 1 < argc) {
      Options.Degrade.Enabled = std::strcmp(argv[++I], "off") != 0;
    } else if (std::strcmp(argv[I], "--capture-segment-bytes") == 0 &&
               I + 1 < argc) {
      // Nonzero switches the flight recorder to crash-safe sealed
      // segments (native_bounded_buffer.segNNNNNN.trc).
      Options.CaptureSegmentBytes =
          static_cast<size_t>(std::strtoull(argv[++I], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--degrade on|off] "
                   "[--capture-segment-bytes N]\n",
                   argv[0]);
      return 2;
    }
  }

  rt::Engine Engine(Detector, Options);
  BoundedBuffer Buffer;
  // The consumer-side total is lock-consistent (every access holds M) and
  // main reads it only after the joins, so its rd/wr events prove nothing
  // the lock discipline doesn't already guarantee: downgrade it. Unlike
  // Unchecked<T>, downgraded accesses stay audited (EventsElided below).
  Buffer.Consumed.downgrade();
  rt::Thread Producer([&Buffer] { Buffer.producer(5); });
  rt::Thread Consumer([&Buffer] { Buffer.consumer(5); });
  Producer.join();
  Consumer.join();
  int Consumed = Buffer.Consumed.read();
  rt::OnlineReport Report = Engine.finish();

  for (const Diagnostic &D : Report.Diags)
    std::printf("  %s\n", toString(D).c_str());
  std::printf("consumed = %d (expect 150), produced = %d items\n", Consumed,
              Buffer.Produced.read());
  std::printf("%llu events captured, %llu dispatched (%llu elided by "
              "annotation), %zu warning(s) online, %.3fs\n",
              (unsigned long long)Report.EventsCaptured,
              (unsigned long long)Report.EventsDispatched,
              (unsigned long long)Report.EventsElided, Report.NumWarnings,
              Report.Seconds);
  if (Options.CaptureSegmentBytes != 0)
    std::printf("flight recorder: %u sealed segment(s), "
                "native_bounded_buffer.segNNNNNN.trc (%zu ops)\n\n",
                Report.CaptureSegments, Report.Captured.size());
  else
    std::printf("flight recorder: native_bounded_buffer.trc (%zu ops)\n\n",
                Report.Captured.size());

  // Re-check the very same execution offline, as trace_file_tool would.
  FastTrack Offline;
  replay(Report.Captured, Offline);
  bool Match = sameWarnings(Detector.warnings(), Offline.warnings());
  std::printf("offline replay of the capture: %zu warning(s) — %s\n",
              Offline.warnings().size(),
              Match ? "identical to the online run" : "MISMATCH");

  bool Ok = Match && !Report.Halted && Report.NumWarnings == 0 &&
            Consumed == 150 && Report.Diags.empty();
  std::printf("\nverdict: %s (race-free program, %s)\n",
              Ok ? "PASS" : "FAIL",
              Report.NumWarnings == 0 ? "no races reported" : "races reported");
  return Ok ? 0 : 1;
}
