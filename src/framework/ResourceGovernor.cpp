#include "framework/ResourceGovernor.h"

#include "support/MemoryTracker.h"

#include <string>

using namespace ft;

static const char *granName(const ReplayOptions &Options) {
  return Options.Gran == Granularity::Fine ? "fine" : "coarse";
}

static std::string attemptName(const ReplayOptions &Options) {
  if (Options.Gran == Granularity::Fine)
    return "fine granularity";
  return "coarse granularity (" +
         std::to_string(Options.DefaultFieldsPerObject) + " fields/object)";
}

GovernedReplayResult ft::replayGoverned(const Trace &T, Tool &Checker,
                                        const ReplayOptions &Base,
                                        const GovernorOptions &Gov) {
  GovernedReplayResult Out;

  ReplayOptions Attempt = Base;
  Attempt.ShadowBudgetBytes = Gov.ShadowBudgetBytes;
  Attempt.BudgetCheckEveryOps = Gov.BudgetCheckEveryOps;
  Attempt.BudgetTracker = Gov.Tracker;
  if (Gov.Tracker)
    Gov.Tracker->setBudget(Gov.ShadowBudgetBytes);

  // Rungs strictly coarser than the caller's own configuration.
  std::vector<unsigned> Rungs;
  if (Gov.ShadowBudgetBytes != 0)
    for (unsigned Fields : Gov.Ladder)
      if (Base.Gran == Granularity::Fine || Fields > Base.DefaultFieldsPerObject)
        Rungs.push_back(Fields);

  for (size_t Rung = 0;; ++Rung) {
    // The last rung must complete: run it unbudgeted.
    if (Rung == Rungs.size())
      Attempt.ShadowBudgetBytes = 0;

    Out.Result = replay(T, Checker, Attempt);
    if (!Out.Result.BudgetExceeded)
      break;

    // Budget breached: discard this attempt's warnings (a from-scratch
    // rerun at the coarser granularity re-derives its own) and degrade.
    Checker.clearWarnings();
    ++Out.Degradations;
    std::string Note = "shadow budget of " +
                       std::to_string(Gov.ShadowBudgetBytes) +
                       " bytes exceeded at operation " +
                       std::to_string(Out.Result.StoppedAtOp) + " under " +
                       attemptName(Attempt) + "; degrading to coarse (" +
                       std::to_string(Rungs[Rung]) + " fields/object)";
    if (Attempt.VarToObject)
      Note += "; explicit field mapping dropped";
    Out.Diags.push_back({StatusCode::ResourceExhausted, Severity::Warning, 0,
                         Out.Result.StoppedAtOp, std::move(Note)});
    Attempt.Gran = Granularity::Coarse;
    Attempt.VarToObject = nullptr;
    Attempt.DefaultFieldsPerObject = Rungs[Rung];
  }

  if (Out.Degradations != 0)
    Out.Diags.push_back(
        {StatusCode::Ok, Severity::Note, 0, NoOpIndex,
         std::string("replay completed at ") + granName(Attempt) +
             " granularity after " + std::to_string(Out.Degradations) +
             " degradation(s); precision is reduced (object-level, not "
             "field-level, race reports)"});
  Out.FinalGran = Attempt.Gran;
  Out.FinalFieldsPerObject =
      Attempt.Gran == Granularity::Coarse ? Attempt.DefaultFieldsPerObject : 0;
  return Out;
}
