//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters for vector-clock allocations and O(n)-time vector-clock
/// operations. Table 2 of the paper compares exactly these two quantities
/// between DJIT+ and FastTrack; the benchmark harness snapshots the
/// counters around each tool run and reports the delta.
///
/// The counter block is *per-thread* (thread_local): the sharded replay
/// engine runs tool clones on worker threads, and contention-free
/// counting keeps the hot path identical to the serial engine. Workers
/// fold their deltas back into the launching thread's block when they
/// finish (see ParallelReplay), so the established snapshot/delta idiom
/// keeps working unchanged for single-threaded callers.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_CLOCK_CLOCKSTATS_H
#define FASTTRACK_CLOCK_CLOCKSTATS_H

#include <cstdint>

namespace ft {

/// Counts of vector-clock activity. All analyses in this repository share
/// one VectorClock implementation (as the paper's tools share RoadRunner's),
/// so these counters provide an apples-to-apples comparison.
struct ClockStats {
  /// Number of clocks materialized: an empty (⊥, zero-size) clock gaining
  /// stored entries, whether by sized construction, copy from a nonempty
  /// clock, or first growth via set/inc/join. Growing an
  /// already-materialized clock is *not* counted — in steady state that
  /// path recycles ClockArena blocks rather than allocating.
  uint64_t Allocations = 0;
  /// Number of O(n)-time joins (⊔).
  uint64_t JoinOps = 0;
  /// Number of O(n)-time pointwise comparisons (⊑).
  uint64_t CompareOps = 0;
  /// Number of O(n)-time whole-clock copies: exactly one per copy from a
  /// nonempty source, regardless of spelling (copy constructor,
  /// operator=, or copyFrom). Copies from empty clocks count nothing.
  uint64_t CopyOps = 0;
  /// Forks that reincarnated a recycled thread slot (the forked tid's
  /// own clock entry had already advanced past its initial value —
  /// possible only after a join of a previous lifetime under the same
  /// id). Counts how often the online engine's slot recycling exercised
  /// the stale-epoch comparison path; not an O(n) op itself.
  uint64_t Reincarnations = 0;

  /// Total O(n)-time operations.
  uint64_t totalOps() const { return JoinOps + CompareOps + CopyOps; }

  /// Pointwise difference (for snapshot deltas).
  ClockStats operator-(const ClockStats &Other) const {
    ClockStats Delta;
    Delta.Allocations = Allocations - Other.Allocations;
    Delta.JoinOps = JoinOps - Other.JoinOps;
    Delta.CompareOps = CompareOps - Other.CompareOps;
    Delta.CopyOps = CopyOps - Other.CopyOps;
    Delta.Reincarnations = Reincarnations - Other.Reincarnations;
    return Delta;
  }

  /// Pointwise accumulation (for folding worker-thread deltas).
  ClockStats &operator+=(const ClockStats &Other) {
    Allocations += Other.Allocations;
    JoinOps += Other.JoinOps;
    CompareOps += Other.CompareOps;
    CopyOps += Other.CopyOps;
    Reincarnations += Other.Reincarnations;
    return *this;
  }
};

/// Returns the calling thread's mutable counter block.
ClockStats &clockStats();

/// Zeroes the calling thread's counters.
void resetClockStats();

} // namespace ft

#endif // FASTTRACK_CLOCK_CLOCKSTATS_H
