//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table/figure harnesses: environment knobs,
/// repeated timed replays, and slowdown computation against the EMPTY
/// tool (the paper's normalization baseline).
///
/// Knobs:
///   FT_BENCH_SIZE  — workload size factor (default 1.0)
///   FT_BENCH_REPS  — timing repetitions, best-of (default 3)
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_BENCH_BENCHUTIL_H
#define FASTTRACK_BENCH_BENCHUTIL_H

#include "framework/Replay.h"
#include "support/Format.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace ft::bench {

inline double sizeFactor() {
  if (const char *Env = std::getenv("FT_BENCH_SIZE"))
    return std::atof(Env) > 0 ? std::atof(Env) : 4.0;
  // Default 4x the generators' base volume: large enough for stable
  // wall-clock measurements, small enough to finish in seconds.
  return 4.0;
}

inline unsigned repetitions() {
  if (const char *Env = std::getenv("FT_BENCH_REPS")) {
    int Reps = std::atoi(Env);
    if (Reps > 0)
      return static_cast<unsigned>(Reps);
  }
  return 3;
}

/// Replays \p T through \p Checker `repetitions()` times (clearing
/// warnings in between) and returns the result of the fastest run.
inline ReplayResult timedReplay(const Trace &T, Tool &Checker,
                                const ReplayOptions &Options = {}) {
  ReplayResult Best;
  for (unsigned Rep = 0, Reps = repetitions(); Rep != Reps; ++Rep) {
    Checker.clearWarnings();
    ReplayResult Result = replay(T, Checker, Options);
    if (Rep == 0 || Result.Seconds < Best.Seconds)
      Best = Result;
  }
  return Best;
}

/// Prints a section banner.
inline void banner(const std::string &Title) {
  std::printf("\n==== %s ====\n\n", Title.c_str());
}

/// The machine-readable side channel every bench binary offers: pass
/// `--json out.json` (or `--json=out.json`) and the headline metrics are
/// written as one JSON document next to the human-readable tables, so CI
/// and future PRs can diff perf without scraping stdout. Without the
/// flag, write() is a successful no-op.
class BenchReport {
public:
  BenchReport(std::string BenchName, int Argc, char **Argv)
      : Name(std::move(BenchName)) {
    for (int I = 1; I < Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg == "--json" && I + 1 < Argc)
        Path = Argv[++I];
      else if (Arg.rfind("--json=", 0) == 0)
        Path = Arg.substr(7);
    }
  }

  /// Records one named measurement (e.g. "fasttrack_ns_per_event").
  void metric(const std::string &MetricName, double Value,
              const std::string &Unit = std::string()) {
    Metrics.push_back({MetricName, Value, Unit});
  }

  /// Writes the document when --json was requested. Returns false on I/O
  /// failure so mains can surface it as a nonzero exit for CI.
  bool write() const {
    if (Path.empty())
      return true;
    std::string Out = "{\n  \"bench\": \"";
    appendEscaped(Out, Name);
    Out += "\",\n  \"size_factor\": " + number(sizeFactor()) +
           ",\n  \"reps\": " + std::to_string(repetitions()) +
           ",\n  \"metrics\": [";
    for (size_t I = 0; I != Metrics.size(); ++I) {
      Out += I ? ",\n    {\"name\": \"" : "\n    {\"name\": \"";
      appendEscaped(Out, Metrics[I].Name);
      Out += "\", \"value\": " + number(Metrics[I].Value);
      if (!Metrics[I].Unit.empty()) {
        Out += ", \"unit\": \"";
        appendEscaped(Out, Metrics[I].Unit);
        Out += "\"";
      }
      Out += "}";
    }
    Out += "\n  ]\n}\n";
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   Path.c_str());
      return false;
    }
    bool Ok = std::fwrite(Out.data(), 1, Out.size(), F) == Out.size();
    Ok = std::fclose(F) == 0 && Ok;
    if (!Ok)
      std::fprintf(stderr, "error: short write to %s\n", Path.c_str());
    return Ok;
  }

private:
  struct Metric {
    std::string Name;
    double Value;
    std::string Unit;
  };

  static std::string number(double Value) {
    if (!std::isfinite(Value))
      return "null"; // JSON has no NaN/Inf
    char Buffer[64];
    std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
    return Buffer;
  }

  static void appendEscaped(std::string &Out, const std::string &S) {
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x", C);
        Out += Buffer;
        continue;
      }
      Out += C;
    }
  }

  std::string Name;
  std::string Path;
  std::vector<Metric> Metrics;
};

} // namespace ft::bench

#endif // FASTTRACK_BENCH_BENCHUTIL_H
