//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax tree for MiniConc. Nodes are tagged structs (one for
/// expressions, one for statements); the resolver (Sema) annotates
/// references in place, so the interpreter never looks at names.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_LANG_AST_H
#define FASTTRACK_LANG_AST_H

#include "trace/Ids.h"

#include <memory>
#include <string>
#include <vector>

namespace ft::lang {

/// A diagnostic from the parser, resolver, or interpreter.
struct Diag {
  unsigned Line = 0;
  unsigned Column = 0;
  std::string Message;
};

/// Renders like "3:7: message".
std::string toString(const Diag &D);

enum class BinaryOp : uint8_t {
  Add, Sub, Mul, Div, Mod, Lt, Le, Gt, Ge, Eq, Ne, And, Or,
};
enum class UnaryOp : uint8_t { Neg, Not };

/// What a name reference resolved to.
enum class RefKind : uint8_t {
  Unresolved,
  Local,       ///< RefIndex = local slot within the enclosing function.
  Shared,      ///< RefIndex = the scalar's VarId.
  Volatile,    ///< RefIndex = VolatileId.
  SharedArray, ///< RefIndex = base VarId; ArraySize elements follow it.
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t {
  IntLit, ///< IntValue
  VarRef, ///< Name -> Ref/RefIndex (Local, Shared, or Volatile)
  Index,  ///< Name[Lhs] -> SharedArray base + dynamic index
  Unary,  ///< UOp applied to Lhs
  Binary, ///< Lhs BOp Rhs (And/Or short-circuit)
  Call,   ///< Name(Args) -> CalleeIndex; synchronous, returns a value
  Spawn,  ///< spawn Name(Args) -> CalleeIndex; returns the thread handle
};

/// An expression node.
struct Expr {
  ExprKind Kind;
  unsigned Line = 0;
  unsigned Column = 0;

  int64_t IntValue = 0;             // IntLit
  std::string Name;                 // VarRef / Index / Call / Spawn
  RefKind Ref = RefKind::Unresolved;
  uint32_t RefIndex = 0;            // slot, VarId, or VolatileId
  uint32_t ArraySize = 0;           // Index: element count of the array
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  ExprPtr Lhs;                      // Unary operand / Index subscript
  ExprPtr Rhs;
  std::vector<ExprPtr> Args;        // Call / Spawn
  uint32_t CalleeIndex = 0;         // Call / Spawn: function table index

  /// Stamped by the elision planner (src/analysis) on shared-access
  /// sites the static pass proved race-free: the interpreter performs
  /// the access but suppresses its rd/wr event (counted in
  /// InterpResult::EventsElided). The parser leaves it false, so an
  /// unanalyzed program emits exactly the pre-analysis event stream.
  bool ElideEvent = false;

  explicit Expr(ExprKind Kind) : Kind(Kind) {}
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : uint8_t {
  Block,     ///< Stmts
  DeclLocal, ///< local/let Name = Init (Init may be null: zero)
  Assign,    ///< Target = Value (Target: VarRef or Index)
  If,        ///< if (Cond) Then else Else
  While,     ///< while (Cond) Body
  Sync,      ///< sync (lock) Body
  Atomic,    ///< atomic Body
  Join,      ///< join Value
  Await,     ///< await barrier
  Wait,      ///< wait lock (must hold it; releases, blocks, reacquires)
  Notify,    ///< notify lock (wakes one waiter; must hold the lock)
  NotifyAll, ///< notifyall lock (wakes every waiter; must hold the lock)
  Print,     ///< print Value
  Return,    ///< return [Value]
  ExprStmt,  ///< Value; (calls / spawns for effect)
};

/// A statement node.
struct Stmt {
  StmtKind Kind;
  unsigned Line = 0;
  unsigned Column = 0;

  std::vector<StmtPtr> Stmts; // Block
  std::string Name;           // DeclLocal / Sync lock / Await barrier
  uint32_t RefIndex = 0;      // DeclLocal slot, Sync LockId, Await barrier id
  ExprPtr Target;             // Assign
  ExprPtr Value;              // DeclLocal init / Assign / Join / Print /
                              // Return / ExprStmt / If & While condition
  StmtPtr Body;               // If-then / While / Sync / Atomic
  StmtPtr Else;               // If

  explicit Stmt(StmtKind Kind) : Kind(Kind) {}
};

/// A function definition. Parameters occupy the first local slots.
struct Function {
  std::string Name;
  std::vector<std::string> Params;
  StmtPtr Body; ///< Always a Block.
  unsigned NumLocals = 0; ///< Filled by the resolver (params included).
  unsigned Line = 0;
};

/// A `shared` global: a scalar (Size == 1) or array. Occupies VarIds
/// [BaseId, BaseId + Size).
struct GlobalVar {
  std::string Name;
  uint32_t Size = 1;
  VarId BaseId = 0;
  unsigned Line = 0;
};

struct VolatileDecl {
  std::string Name;
  VolatileId Id = 0;
  unsigned Line = 0;
};

struct LockDecl {
  std::string Name;
  LockId Id = 0;
  unsigned Line = 0;
};

/// `barrier b(N);` — a reusable N-party barrier.
struct BarrierDecl {
  std::string Name;
  uint32_t Arity = 0;
  uint32_t Id = 0;
  unsigned Line = 0;
};

/// A resolved MiniConc program, ready to interpret.
struct Program {
  std::vector<GlobalVar> Globals;
  std::vector<VolatileDecl> Volatiles;
  std::vector<LockDecl> Locks;
  std::vector<BarrierDecl> Barriers;
  std::vector<Function> Functions;
  int MainIndex = -1;
  uint32_t NumVarIds = 0; ///< Total shared VarId space (scalars + arrays).
};

} // namespace ft::lang

#endif // FASTTRACK_LANG_AST_H
