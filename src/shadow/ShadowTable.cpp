#include "shadow/ShadowTable.h"

using namespace ft;

template <typename EpochT>
typename ShadowTable<EpochT>::Page *ShadowTable<EpochT>::faultIn(size_t PI) {
  // Value-initialization zeroes every slot: raw 0 is ⊥e for both fields,
  // so a fresh page is indistinguishable from never-accessed state.
  assert(!EagerBlock && "eager tables have every page resident");
  Page *P = new Page();
  Dir[PI] = P;
  ++Resident;
  return P;
}

template <typename EpochT>
void ShadowTable<EpochT>::materializeEagerly(size_t NumPages) {
  static_assert(sizeof(Page) == PageSize * sizeof(Slot),
                "pages must tile so the eager block's slots are flat");
  EagerBlock.reset(new Page[NumPages]()); // value-init: every slot ⊥
  for (size_t PI = 0; PI != NumPages; ++PI)
    Dir[PI] = &EagerBlock[PI];
  FlatSlots = EagerBlock[0].Slots;
  Resident = NumPages;
}

template <typename EpochT> void ShadowTable<EpochT>::releasePages() noexcept {
  if (EagerBlock) {
    EagerBlock.reset();
    FlatSlots = nullptr;
  } else {
    for (Page *P : Dir)
      delete P;
  }
  Dir.clear();
  Resident = 0;
}

namespace ft {
template class ShadowTable<Epoch>;
template class ShadowTable<Epoch64>;
} // namespace ft
