//===----------------------------------------------------------------------===//
//
// E14: what eliding proven-race-free instrumentation buys end to end.
//
// Two series, each with a mostly-thread-local and a mostly-shared
// workload, elision off vs on:
//
//  MiniConc (static pass): the whole pipeline — interpret (emit events)
//  + FastTrack over the emitted stream. The interpreter is this
//  repository's stand-in for the *base program's own execution*, so it
//  bounds how much end-to-end time event emission can be; the series
//  reports how much of the stream disappears and what that saves.
//
//  native runtime (annotation path): real std::threads under a live
//  online Engine, private tallies downgraded via Shared<T>::downgrade().
//  Here the emit path (ticket, ring, sequencer, detector) *is* the
//  overhead — the paper's Table 1 economics — so removing proven-safe
//  events shows up directly in wall-clock throughput.
//
//   mostly-thread-local  workers hammer private accumulators and
//                        publish under one lock; nearly every access
//                        event is provably race-free and elides
//   mostly-shared        every access is to genuinely shared state no
//                        single lock covers end to end; nothing is
//                        elidable, so this row bounds the regression
//
// All workloads are race-free; the harness asserts warnings and program
// results match between the configurations before trusting any timing.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Elision.h"
#include "core/FastTrack.h"
#include "lang/Interp.h"
#include "lang/Sema.h"
#include "runtime/Instrument.h"
#include "support/Stopwatch.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

using namespace ft;
using namespace ft::bench;
using namespace ft::lang;
namespace rt = ft::runtime;

namespace {

/// Four workers, each with a private accumulator hammered in a tight
/// loop, published once under the lock. Distinct functions so each
/// accumulator has exactly one abstract accessor thread.
std::string mostlyThreadLocal(int Rounds) {
  std::string Source = "shared total;\nlock m;\n";
  for (int W = 0; W != 4; ++W) {
    std::string T = "t" + std::to_string(W);
    Source += "shared " + T + ";\n";
    Source += "fn worker" + std::to_string(W) + "(rounds) {\n"
              "  local i = 0;\n"
              "  while (i < rounds) { " + T + " = " + T + " + 1; "
              "i = i + 1; }\n"
              "  sync (m) { total = total + " + T + "; }\n"
              "}\n";
  }
  Source += "fn main() {\n  total = 0;\n";
  for (int W = 0; W != 4; ++W)
    Source += "  let h" + std::to_string(W) + " = spawn worker" +
              std::to_string(W) + "(" + std::to_string(Rounds) + ");\n";
  for (int W = 0; W != 4; ++W)
    Source += "  join h" + std::to_string(W) + ";\n";
  Source += "  sync (m) { print total; }\n}\n";
  return Source;
}

/// Four workers contending on one lock-protected counter — but main
/// reads it unlocked after the joins (safe via join edges, invisible to
/// a lockset), so every site stays instrumented.
std::string mostlyShared(int Rounds) {
  std::string Source = "shared counter;\nlock m;\n"
                       "fn worker(rounds) {\n"
                       "  local i = 0;\n"
                       "  while (i < rounds) {\n"
                       "    sync (m) { counter = counter + 1; }\n"
                       "    i = i + 1;\n"
                       "  }\n"
                       "}\n"
                       "fn main() {\n";
  for (int W = 0; W != 4; ++W)
    Source += "  let h" + std::to_string(W) + " = spawn worker(" +
              std::to_string(Rounds) + ");\n";
  for (int W = 0; W != 4; ++W)
    Source += "  join h" + std::to_string(W) + ";\n";
  Source += "  print counter;\n}\n";
  return Source;
}

struct PipelineRun {
  double Seconds = 0;      ///< interpret + detect, best-of-reps.
  uint64_t Events = 0;     ///< emitted stream length.
  uint64_t Elided = 0;     ///< accesses whose event was suppressed.
  std::string Output;      ///< program output (sanity).
  std::vector<VarId> Warned;
};

std::vector<VarId> warnedVars(const Trace &T) {
  FastTrack Detector;
  replay(T, Detector);
  std::vector<VarId> Vars;
  for (const RaceWarning &W : Detector.warnings())
    Vars.push_back(W.Var);
  return Vars;
}

/// One end-to-end pipeline pass: interpret the (pre-stamped) program,
/// then run FastTrack over whatever stream came out. Timed together —
/// that is the latency a user of the tool sees.
PipelineRun runPipeline(const Program &P) {
  PipelineRun Best;
  for (unsigned Rep = 0, Reps = repetitions(); Rep != Reps; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    InterpResult Run = interpret(P);
    FastTrack Detector;
    replay(Run.EventTrace, Detector);
    double Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    if (!Run.Ok) {
      std::fprintf(stderr, "runtime error: %s\n",
                   toString(Run.Error).c_str());
      std::exit(1);
    }
    if (Rep == 0 || Seconds < Best.Seconds) {
      Best.Seconds = Seconds;
      Best.Events = Run.EventTrace.size();
      Best.Elided = Run.EventsElided;
      Best.Output = Run.Output;
      Best.Warned = warnedVars(Run.EventTrace);
    }
  }
  return Best;
}

uint64_t accessEvents(const Program &P) {
  InterpResult Run = interpret(P);
  uint64_t Accesses = 0;
  for (const Operation &Op : Run.EventTrace.operations())
    if (Op.Kind == OpKind::Read || Op.Kind == OpKind::Write)
      ++Accesses;
  return Accesses;
}

struct WorkloadResult {
  double ElidedAccessFrac = 0;
  double Speedup = 1;
};

WorkloadResult measure(const std::string &Name, const std::string &Source,
                       Table &Out) {
  Program Full, Elided;
  std::vector<Diag> Diags;
  if (!compileProgram(Source, Full, Diags) ||
      !compileProgram(Source, Elided, Diags)) {
    std::fprintf(stderr, "compile error: %s\n",
                 toString(Diags.front()).c_str());
    std::exit(1);
  }
  analysis::ElisionPlan Plan = analysis::applyElision(Elided);
  uint64_t Accesses = accessEvents(Full);

  PipelineRun A = runPipeline(Full);
  PipelineRun B = runPipeline(Elided);
  if (A.Output != B.Output || A.Warned != B.Warned) {
    std::fprintf(stderr,
                 "%s: elided pipeline diverged from the full one — "
                 "timings are meaningless, aborting\n",
                 Name.c_str());
    std::exit(1);
  }

  WorkloadResult R;
  R.ElidedAccessFrac =
      Accesses ? (double)B.Elided / (double)Accesses : 0.0;
  R.Speedup = B.Seconds > 0 ? A.Seconds / B.Seconds : 1.0;
  Out.addRow({Name, withCommas(A.Events), withCommas(B.Events),
              fixed(100.0 * R.ElidedAccessFrac, 1) + "%",
              fixed(A.Seconds * 1e3, 1) + " ms",
              fixed(B.Seconds * 1e3, 1) + " ms",
              fixed(R.Speedup, 2) + "x",
              std::to_string(Plan.SitesElided) + "/" +
                  std::to_string(Plan.SitesTotal)});
  return R;
}

// --- native runtime series (annotation path) ----------------------------

constexpr unsigned NativeThreads = 4;

struct NativeRun {
  double Seconds = 0;
  uint64_t Emitted = 0;
  uint64_t Elided = 0;
  size_t Warnings = 0;
  long Total = 0;
};

/// Options pinning the session at full fidelity with no capture: the
/// bench measures the emit path, not trace retention or the ladder.
rt::OnlineOptions benchOptions() {
  rt::OnlineOptions Options;
  Options.KeepCapture = false;
  Options.ValidateCapture = false;
  Options.Supervise.Enabled = false;
  Options.Degrade.Enabled = false;
  return Options;
}

/// Mostly-thread-local, native: each thread hammers its own tally and
/// folds it into a lock-protected total every 16 rounds. With
/// \p Downgrade the tallies are annotated race-free (they are: strictly
/// thread-confined) and their accesses skip the emit path entirely.
NativeRun nativeThreadLocal(int Rounds, bool Downgrade) {
  NativeRun Best;
  for (unsigned Rep = 0, Reps = repetitions(); Rep != Reps; ++Rep) {
    FastTrack Detector;
    rt::Shared<long> Tallies[NativeThreads];
    rt::Shared<long> Total;
    rt::Mutex M;
    if (Downgrade)
      for (rt::Shared<long> &Tally : Tallies)
        Tally.downgrade();

    Stopwatch Watch;
    rt::Engine Engine(Detector, benchOptions());
    {
      std::vector<rt::Thread> Threads;
      Threads.reserve(NativeThreads);
      for (unsigned T = 0; T != NativeThreads; ++T)
        Threads.emplace_back([&, T] {
          rt::Shared<long> &Tally = Tallies[T];
          for (int I = 0; I != Rounds; ++I) {
            Tally.write(Tally.read() + 1);
            if (I % 16 == 15) {
              std::lock_guard<rt::Mutex> Guard(M);
              Total.write(Total.read() + 16);
            }
          }
        });
      for (rt::Thread &T : Threads)
        T.join();
    }
    rt::OnlineReport Report = Engine.finish();
    double Seconds = Watch.seconds();
    if (Rep == 0 || Seconds < Best.Seconds) {
      Best.Seconds = Seconds;
      Best.Emitted = Report.EventsDispatched;
      Best.Elided = Report.EventsElided;
      Best.Warnings = Report.NumWarnings;
      Best.Total = Total.read();
    }
  }
  return Best;
}

/// Mostly-shared, native: every access is a lock-protected
/// read-modify-write of a striped counter array every thread tours —
/// genuinely shared state, nothing a sound annotation could remove.
/// Identical in both configurations; the row bounds the regression.
NativeRun nativeShared(int Rounds) {
  NativeRun Best;
  for (unsigned Rep = 0, Reps = repetitions(); Rep != Reps; ++Rep) {
    FastTrack Detector;
    constexpr unsigned Stripes = 4;
    rt::Mutex Locks[Stripes];
    rt::Shared<long> Cells[Stripes];

    Stopwatch Watch;
    rt::Engine Engine(Detector, benchOptions());
    {
      std::vector<rt::Thread> Threads;
      Threads.reserve(NativeThreads);
      for (unsigned T = 0; T != NativeThreads; ++T)
        Threads.emplace_back([&, T] {
          for (int I = 0; I != Rounds; ++I) {
            unsigned S = (T + static_cast<unsigned>(I)) % Stripes;
            std::lock_guard<rt::Mutex> Guard(Locks[S]);
            Cells[S].write(Cells[S].read() + 1);
          }
        });
      for (rt::Thread &T : Threads)
        T.join();
    }
    rt::OnlineReport Report = Engine.finish();
    double Seconds = Watch.seconds();
    if (Rep == 0 || Seconds < Best.Seconds) {
      Best.Seconds = Seconds;
      Best.Emitted = Report.EventsDispatched;
      Best.Elided = Report.EventsElided;
      Best.Warnings = Report.NumWarnings;
      long Sum = 0;
      for (rt::Shared<long> &Cell : Cells)
        Sum += Cell.read();
      Best.Total = Sum;
    }
  }
  return Best;
}

void addNativeRow(Table &Out, const std::string &Name, const NativeRun &A,
                  const NativeRun &B, uint64_t FullAccesses,
                  WorkloadResult &R) {
  R.ElidedAccessFrac =
      FullAccesses ? (double)B.Elided / (double)FullAccesses : 0.0;
  R.Speedup = B.Seconds > 0 ? A.Seconds / B.Seconds : 1.0;
  Out.addRow({Name, withCommas(A.Emitted), withCommas(B.Emitted),
              fixed(100.0 * R.ElidedAccessFrac, 1) + "%",
              fixed(A.Seconds * 1e3, 1) + " ms",
              fixed(B.Seconds * 1e3, 1) + " ms",
              fixed(R.Speedup, 2) + "x", "-"});
}

} // namespace

int main(int Argc, char **Argv) {
  BenchReport Report("bench_elision", Argc, Argv);
  banner("E14: elision payoff — MiniConc static pass + native annotations");

  int Rounds = static_cast<int>(25000 * sizeFactor());
  std::printf("4 workers x %d rounds per workload, best of %u reps\n\n",
              Rounds, repetitions());

  Table T;
  T.addHeader({"workload", "events full", "events elided", "accesses saved",
               "full", "elided", "speedup", "sites"});
  WorkloadResult Local =
      measure("mc thread-local", mostlyThreadLocal(Rounds), T);
  WorkloadResult Shared = measure("mc shared", mostlyShared(Rounds), T);

  int NativeRounds = static_cast<int>(100000 * sizeFactor());
  NativeRun NativeFull = nativeThreadLocal(NativeRounds, false);
  NativeRun NativeElided = nativeThreadLocal(NativeRounds, true);
  if (NativeFull.Warnings != NativeElided.Warnings ||
      NativeFull.Total != NativeElided.Total ||
      NativeFull.Total != (long)NativeThreads * (NativeRounds / 16) * 16) {
    std::fprintf(stderr, "native thread-local: configurations diverged\n");
    return 1;
  }
  // Per thread: 2 tally accesses per round + 2 total accesses per
  // 16-round publish; fork/join and lock traffic are not accesses.
  uint64_t LocalAccesses =
      (uint64_t)NativeThreads *
      (2u * (uint64_t)NativeRounds + 2u * ((uint64_t)NativeRounds / 16));
  WorkloadResult NativeLocal;
  addNativeRow(T, "native thread-local", NativeFull, NativeElided,
               LocalAccesses, NativeLocal);

  NativeRun SharedOnce = nativeShared(NativeRounds / 4);
  NativeRun SharedAgain = nativeShared(NativeRounds / 4);
  if (SharedOnce.Warnings != 0 || SharedAgain.Warnings != 0) {
    std::fprintf(stderr, "native shared: unexpected warnings\n");
    return 1;
  }
  uint64_t SharedAccesses =
      (uint64_t)NativeThreads * 2u * (uint64_t)(NativeRounds / 4);
  WorkloadResult NativeSharedR;
  addNativeRow(T, "native shared", SharedOnce, SharedAgain, SharedAccesses,
               NativeSharedR);

  std::printf("%s\n", T.render().c_str());

  std::printf(
      "expectation: the thread-local workloads elide >=30%% of access\n"
      "events; the native one turns that into >=15%% end-to-end speedup\n"
      "(the emit path is the dominant cost there, as in the paper's\n"
      "instrumented-JVM setting). The MiniConc pipeline is bounded by\n"
      "interpreter time — its speedup shows the detector-side saving\n"
      "only. Mostly-shared workloads elide ~0%% and must not regress.\n");

  Report.metric("mc_threadlocal_access_events_elided_frac",
                Local.ElidedAccessFrac);
  Report.metric("mc_threadlocal_pipeline_speedup", Local.Speedup, "x");
  Report.metric("mc_shared_access_events_elided_frac",
                Shared.ElidedAccessFrac);
  Report.metric("mc_shared_pipeline_speedup", Shared.Speedup, "x");
  Report.metric("native_threadlocal_access_events_elided_frac",
                NativeLocal.ElidedAccessFrac);
  Report.metric("native_threadlocal_speedup", NativeLocal.Speedup, "x");
  Report.metric("native_shared_speedup", NativeSharedR.Speedup, "x");
  return Report.write() ? 0 : 1;
}
