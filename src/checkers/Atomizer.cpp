#include "checkers/Atomizer.h"

using namespace ft;

void Atomizer::begin(const ToolContext &Context) {
  RaceApprox.begin(Context);
  RaceApprox.clearWarnings();
  Txns.assign(Context.NumThreads, TxnState());
  Violations.clear();
}

void Atomizer::reportViolation(ThreadId T, size_t OpIndex,
                               std::string Detail) {
  TxnState &Txn = Txns[T];
  if (Txn.Violated)
    return;
  Txn.Violated = true;
  Violations.push_back({T, Txn.BeginIndex, OpIndex, std::move(Detail)});
}

void Atomizer::access(ThreadId T, VarId X, size_t OpIndex, bool IsWrite) {
  if (IsWrite)
    RaceApprox.onWrite(T, X, OpIndex);
  else
    RaceApprox.onRead(T, X, OpIndex);

  TxnState &Txn = Txns[T];
  if (!Txn.Active)
    return;
  if (!RaceApprox.isUnprotected(X))
    return; // both-mover: lock-protected or (apparently) thread-local

  // Non-mover: allowed once as the commit point.
  if (Txn.P == Phase::PostCommit) {
    reportViolation(T, OpIndex,
                    "second non-mover access to x" + std::to_string(X) +
                        " after commit point");
    return;
  }
  Txn.P = Phase::PostCommit;
}

bool Atomizer::onRead(ThreadId T, VarId X, size_t OpIndex) {
  access(T, X, OpIndex, /*IsWrite=*/false);
  return true;
}

bool Atomizer::onWrite(ThreadId T, VarId X, size_t OpIndex) {
  access(T, X, OpIndex, /*IsWrite=*/true);
  return true;
}

void Atomizer::onAcquire(ThreadId T, LockId M, size_t OpIndex) {
  RaceApprox.onAcquire(T, M, OpIndex);
  TxnState &Txn = Txns[T];
  if (Txn.Active && Txn.P == Phase::PostCommit)
    reportViolation(T, OpIndex,
                    "lock acquire (right mover) after commit point");
}

void Atomizer::onRelease(ThreadId T, LockId M, size_t OpIndex) {
  RaceApprox.onRelease(T, M, OpIndex);
  TxnState &Txn = Txns[T];
  if (Txn.Active)
    Txn.P = Phase::PostCommit; // left mover commits the block
}

void Atomizer::onVolatileRead(ThreadId T, VolatileId, size_t OpIndex) {
  // A volatile read synchronizes-with prior writes: right-mover-like;
  // treat as a non-mover commit for safety.
  TxnState &Txn = Txns[T];
  if (!Txn.Active)
    return;
  if (Txn.P == Phase::PostCommit)
    reportViolation(T, OpIndex, "volatile read after commit point");
  else
    Txn.P = Phase::PostCommit;
}

void Atomizer::onVolatileWrite(ThreadId T, VolatileId, size_t OpIndex) {
  TxnState &Txn = Txns[T];
  if (Txn.Active)
    Txn.P = Phase::PostCommit;
  (void)OpIndex;
}

void Atomizer::onBarrier(const std::vector<ThreadId> &Threads,
                         size_t OpIndex) {
  RaceApprox.onBarrier(Threads, OpIndex);
  for (ThreadId T : Threads)
    if (Txns[T].Active)
      reportViolation(T, OpIndex, "barrier inside atomic block");
}

void Atomizer::onAtomicBegin(ThreadId T, size_t OpIndex) {
  TxnState &Txn = Txns[T];
  if (Txn.Active) {
    ++Txn.Depth; // flatten nesting
    return;
  }
  Txn.Active = true;
  Txn.Violated = false;
  Txn.Depth = 1;
  Txn.BeginIndex = OpIndex;
  Txn.P = Phase::PreCommit;
}

void Atomizer::onAtomicEnd(ThreadId T, size_t) {
  TxnState &Txn = Txns[T];
  if (Txn.Depth > 0 && --Txn.Depth == 0)
    Txn.Active = false;
}

size_t Atomizer::shadowBytes() const {
  return RaceApprox.shadowBytes() + Txns.capacity() * sizeof(TxnState);
}
