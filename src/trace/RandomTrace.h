//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generation of *feasible* traces, used by the
/// property-based tests to validate every detector against the exact
/// happens-before oracle on thousands of executions.
///
/// Two regimes:
///   - Disciplined: every shared variable is protected by its own lock (or
///     is thread-local, or is read-shared after a fork hand-off), so the
///     generated trace is race-free by construction.
///   - Chaotic: accesses ignore the discipline with some probability, so
///     races occur naturally and the oracle decides which variables race.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_TRACE_RANDOMTRACE_H
#define FASTTRACK_TRACE_RANDOMTRACE_H

#include "trace/Trace.h"

#include <cstdint>

namespace ft {

/// Parameters of the random trace generator.
struct RandomTraceConfig {
  uint64_t Seed = 1;
  unsigned NumThreads = 4;  ///< Worker threads forked by the main thread.
  unsigned NumVars = 12;
  unsigned NumLocks = 3;
  unsigned NumVolatiles = 2;
  unsigned OpsPerThread = 60;

  /// Probability that an access ignores the locking discipline (0 gives a
  /// race-free trace).
  double ChaosProbability = 0.0;

  /// Probability of a volatile operation instead of a data access.
  double VolatileProbability = 0.03;

  /// Probability that, at a step boundary, all running threads pass a
  /// barrier.
  double BarrierProbability = 0.01;

  /// Include atomic-block markers (for checker tests).
  bool EmitAtomicBlocks = false;

  /// Maximum repetitions of each data access (bursts of 1..MaxAccessBurst
  /// back-to-back accesses to the same variable, as fields see in real
  /// object code). Bursts after the first access are same-epoch hits.
  unsigned MaxAccessBurst = 1;

  /// Fraction of disciplined accesses that are thread-local, and
  /// read-shared; the remainder is lock-protected.
  double ThreadLocalShare = 0.35;
  double ReadSharedShare = 0.25;
};

/// Generates one feasible trace: the main thread forks the workers, the
/// workers run random operation mixes under the configured discipline, and
/// the main thread joins them. The result always passes validateTrace().
Trace generateRandomTrace(const RandomTraceConfig &Config);

} // namespace ft

#endif // FASTTRACK_TRACE_RANDOMTRACE_H
