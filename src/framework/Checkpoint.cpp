#include "framework/Checkpoint.h"

#include "framework/ShardableTool.h"
#include "support/ByteStream.h"
#include "support/Stopwatch.h"
#include "trace/ReentrancyFilter.h"

#include <cstdio>
#include <cstring>

using namespace ft;

namespace {

constexpr uint32_t CheckpointMagic = 0x4654434b; // 'FTCK'
constexpr uint32_t CheckpointVersion = 1;

void hashBytes(uint64_t &H, const void *Data, size_t Len) {
  H = fnv1a(std::string_view(static_cast<const char *>(Data), Len), H);
}

void hashU32(uint64_t &H, uint32_t V) {
  char Buf[4];
  std::memcpy(Buf, &V, 4);
  hashBytes(H, Buf, 4);
}

/// Fingerprints the trace *and* the replay configuration: a checkpoint is
/// only meaningful against the exact event stream it was cut from.
uint64_t traceFingerprint(const Trace &T, const ReplayOptions &Options) {
  uint64_t H = fnv1a("FTCK-fingerprint");
  hashU32(H, static_cast<uint32_t>(T.size()));
  hashU32(H, T.numThreads());
  hashU32(H, T.numVars());
  hashU32(H, T.numLocks());
  hashU32(H, T.numVolatiles());
  for (size_t I = 0, E = T.size(); I != E; ++I) {
    const Operation &Op = T[I];
    hashU32(H, static_cast<uint32_t>(Op.Kind));
    hashU32(H, Op.Thread);
    hashU32(H, Op.Target);
    if (Op.Kind == OpKind::Barrier)
      for (ThreadId U : T.barrierSet(Op.Target))
        hashU32(H, U);
  }
  hashU32(H, static_cast<uint32_t>(Options.Gran));
  hashU32(H, Options.DefaultFieldsPerObject);
  hashU32(H, Options.FilterReentrantLocks);
  if (Options.VarToObject) {
    hashU32(H, static_cast<uint32_t>(Options.VarToObject->size()));
    for (uint32_t V : *Options.VarToObject)
      hashU32(H, V);
  }
  return H;
}

/// The mutable replay cursor a checkpoint carries.
struct Cursor {
  uint64_t NextOp = 0;
  uint64_t Events = 0;
  uint64_t AccessesPassed = 0;
};

bool writeCheckpoint(const std::string &Path, uint64_t Fingerprint,
                     const Tool &Checker, const ShardableTool &Shadow,
                     const ReentrancyFilter &Reentrancy, const Cursor &Cur,
                     std::string &Error) {
  ByteWriter Writer;
  Writer.u32(CheckpointMagic);
  Writer.u32(CheckpointVersion);
  Writer.u64(Fingerprint);
  Writer.str(Checker.name());
  Writer.u64(Cur.NextOp);
  Writer.u64(Cur.Events);
  Writer.u64(Cur.AccessesPassed);
  Reentrancy.snapshot(Writer);
  const std::vector<RaceWarning> &Warnings = Checker.warnings();
  Writer.u64(Warnings.size());
  for (const RaceWarning &W : Warnings) {
    Writer.u32(W.Var);
    Writer.u64(W.OpIndex);
    Writer.u32(W.CurrentThread);
    Writer.u8(static_cast<uint8_t>(W.CurrentKind));
    Writer.u32(W.PriorThread);
    Writer.u8(static_cast<uint8_t>(W.PriorKind));
    Writer.str(W.Detail);
  }
  ByteWriter ShadowWriter;
  Shadow.snapshotShadow(ShadowWriter);
  Writer.str(ShadowWriter.bytes());
  Writer.u64(Writer.checksum());

  std::string Tmp = Path + ".tmp";
  std::FILE *File = std::fopen(Tmp.c_str(), "wb");
  if (!File) {
    Error = "cannot open '" + Tmp + "' for writing";
    return false;
  }
  std::string_view Bytes = Writer.bytes();
  bool Ok = std::fwrite(Bytes.data(), 1, Bytes.size(), File) == Bytes.size();
  Ok = std::fclose(File) == 0 && Ok;
  if (!Ok) {
    Error = "short write to '" + Tmp + "'";
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Error = "cannot rename '" + Tmp + "' into place";
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

/// Restores \p Checker / \p Reentrancy / \p Cur from the image at \p Path.
/// \returns false with \p Reason empty when no file exists (silent fresh
/// start) or with a non-empty \p Reason when the image is unusable.
bool tryRestore(const std::string &Path, uint64_t Fingerprint, const Trace &T,
                Tool &Checker, ShardableTool &Shadow,
                ReentrancyFilter &Reentrancy, Cursor &Cur,
                std::string &Reason) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false; // No checkpoint yet; not an error.
  std::string Data;
  char Buf[1 << 16];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Data.append(Buf, Got);
  bool ReadOk = std::ferror(File) == 0;
  std::fclose(File);
  if (!ReadOk) {
    Reason = "read error";
    return false;
  }
  if (Data.size() < 8) {
    Reason = "truncated image";
    return false;
  }

  uint64_t Stored = 0;
  std::memcpy(&Stored, Data.data() + Data.size() - 8, 8);
  if (fnv1a(std::string_view(Data.data(), Data.size() - 8)) != Stored) {
    Reason = "checksum mismatch (corrupt or truncated image)";
    return false;
  }

  ByteReader Reader(std::string_view(Data.data(), Data.size() - 8));
  if (Reader.u32() != CheckpointMagic) {
    Reason = "bad magic";
    return false;
  }
  if (uint32_t V = Reader.u32(); V != CheckpointVersion) {
    Reason = "unsupported format version " + std::to_string(V);
    return false;
  }
  if (Reader.u64() != Fingerprint) {
    Reason = "trace/configuration fingerprint mismatch";
    return false;
  }
  if (Reader.str() != Checker.name()) {
    Reason = "checkpoint was cut by a different tool";
    return false;
  }
  Cur.NextOp = Reader.u64();
  Cur.Events = Reader.u64();
  Cur.AccessesPassed = Reader.u64();
  if (Reader.failed() || Cur.NextOp > T.size()) {
    Reason = "cursor out of range";
    return false;
  }
  if (!Reentrancy.restore(Reader)) {
    Reason = "malformed lock-filter state";
    return false;
  }
  uint64_t NumWarnings = Reader.u64();
  if (Reader.failed() || NumWarnings > Reader.remaining()) {
    Reason = "malformed warning list";
    return false;
  }
  std::vector<RaceWarning> Warnings;
  Warnings.reserve(NumWarnings);
  for (uint64_t I = 0; I != NumWarnings; ++I) {
    RaceWarning W;
    W.Var = Reader.u32();
    W.OpIndex = Reader.u64();
    W.CurrentThread = Reader.u32();
    W.CurrentKind = static_cast<OpKind>(Reader.u8());
    W.PriorThread = Reader.u32();
    W.PriorKind = static_cast<OpKind>(Reader.u8());
    W.Detail = Reader.str();
    Warnings.push_back(std::move(W));
  }
  std::string ShadowBlob = Reader.str();
  if (Reader.failed()) {
    Reason = "malformed image";
    return false;
  }
  ByteReader ShadowReader{std::string_view(ShadowBlob)};
  if (!Shadow.restoreShadow(ShadowReader)) {
    Reason = "malformed shadow state";
    return false;
  }
  Checker.clearWarnings();
  Checker.adoptWarnings(Warnings);
  return true;
}

} // namespace

CheckpointedReplayResult ft::replayCheckpointed(const Trace &T, Tool &Checker,
                                                const ReplayOptions &Replay,
                                                const CheckpointOptions &Ck) {
  CheckpointedReplayResult Out;
  GranularityMap Map = GranularityMap::make(Replay);
  ToolContext Context = makeToolContext(T, Map);

  auto *Shadow = dynamic_cast<ShardableTool *>(&Checker);
  bool CanCheckpoint =
      !Ck.Path.empty() && Shadow && Shadow->supportsCheckpoint();
  if (!Ck.Path.empty() && !CanCheckpoint)
    Out.Diags.push_back({StatusCode::CheckpointError, Severity::Warning, 0,
                         NoOpIndex,
                         std::string(Checker.name()) +
                             " does not support checkpointing; replaying "
                             "without checkpoints"});

  uint64_t Fingerprint = CanCheckpoint ? traceFingerprint(T, Replay) : 0;

  ClockStats Before = clockStats();
  Stopwatch Watch;
  Checker.begin(Context);

  ReentrancyFilter Reentrancy(T.numThreads(), T.numLocks());
  Cursor Cur;

  if (CanCheckpoint && Ck.Resume) {
    std::string Reason;
    if (tryRestore(Ck.Path, Fingerprint, T, Checker, *Shadow, Reentrancy, Cur,
                   Reason)) {
      Out.Resumed = true;
      Out.ResumedAtOp = Cur.NextOp;
      Out.Diags.push_back({StatusCode::Ok, Severity::Note, 0,
                           static_cast<size_t>(Cur.NextOp),
                           "resumed from '" + Ck.Path + "' at operation " +
                               std::to_string(Cur.NextOp)});
    } else if (!Reason.empty()) {
      // A failed restore may have partially mutated the tool: reset it.
      Checker.begin(Context);
      Checker.clearWarnings();
      Reentrancy = ReentrancyFilter(T.numThreads(), T.numLocks());
      Cur = Cursor();
      Out.Diags.push_back({StatusCode::CheckpointError, Severity::Warning, 0,
                           NoOpIndex,
                           "ignoring checkpoint '" + Ck.Path +
                               "': " + Reason + "; starting from scratch"});
    }
  }

  // The dispatch below must mirror replay()'s loop exactly — any
  // divergence breaks the bit-identical-resume contract the fault
  // injection tests enforce.
  bool FilterLocks = Replay.FilterReentrantLocks;
  uint64_t OpsThisRun = 0;
  size_t Stopped = T.size();
  bool Crashed = false;

  for (size_t I = Cur.NextOp, E = T.size(); I != E; ++I) {
    const Operation &Op = T[I];
    switch (Op.Kind) {
    case OpKind::Read:
    case OpKind::Write: {
      ++Cur.Events;
      bool Passed = Op.Kind == OpKind::Read
                        ? Checker.onRead(Op.Thread, Map.map(Op.Target), I)
                        : Checker.onWrite(Op.Thread, Map.map(Op.Target), I);
      Cur.AccessesPassed += Passed;
      break;
    }
    case OpKind::Acquire:
      if (FilterLocks && !Reentrancy.onAcquire(Op.Thread, Op.Target))
        break;
      ++Cur.Events;
      dispatchSyncOp(Checker, T, Op, I);
      break;
    case OpKind::Release:
      if (FilterLocks && !Reentrancy.onRelease(Op.Thread, Op.Target))
        break;
      ++Cur.Events;
      dispatchSyncOp(Checker, T, Op, I);
      break;
    default:
      ++Cur.Events;
      dispatchSyncOp(Checker, T, Op, I);
      break;
    }
    ++OpsThisRun;
    Cur.NextOp = I + 1;

    if (CanCheckpoint && Ck.EveryOps != 0 && Cur.NextOp % Ck.EveryOps == 0 &&
        Cur.NextOp != E) {
      std::string Error;
      if (writeCheckpoint(Ck.Path, Fingerprint, Checker, *Shadow, Reentrancy,
                          Cur, Error))
        ++Out.CheckpointsWritten;
      else
        Out.Diags.push_back({StatusCode::IoError, Severity::Warning, 0,
                             static_cast<size_t>(Cur.NextOp),
                             "checkpoint write failed: " + Error +
                                 "; replay continues"});
    }
    if (Ck.InjectCrashAfterOps != 0 && OpsThisRun >= Ck.InjectCrashAfterOps) {
      Crashed = true;
      Stopped = I + 1;
      break;
    }
  }

  if (Crashed) {
    // Simulated kill: no end() hook, no final state flush. Whatever
    // checkpoint was last renamed into place is what a resume will see.
    Out.St = Status::error(StatusCode::Cancelled,
                           "injected crash after " +
                               std::to_string(OpsThisRun) + " operations");
  } else {
    Checker.end();
    if (CanCheckpoint && !Ck.KeepOnSuccess)
      std::remove(Ck.Path.c_str());
  }

  Out.Result.Seconds = Watch.seconds();
  Out.Result.Events = Cur.Events;
  Out.Result.AccessesPassed = Cur.AccessesPassed;
  Out.Result.Clocks = clockStats() - Before;
  Out.Result.ShadowBytes = Checker.shadowBytes();
  Out.Result.NumWarnings = Checker.warnings().size();
  Out.Result.StoppedAtOp = Stopped;
  return Out;
}
