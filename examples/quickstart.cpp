//===----------------------------------------------------------------------===//
//
// Quickstart: build a trace, run FastTrack, read the warnings.
//
// This walks the exact scenarios of the paper's Sections 2.2 and 3: a
// race-free lock hand-off, the Figure 4 adaptive read representation, and
// a genuine write-write race.
//
//===----------------------------------------------------------------------===//

#include "core/FastTrack.h"
#include "framework/Replay.h"
#include "trace/TraceBuilder.h"

#include <cstdio>

using namespace ft;

static void check(const char *Title, const Trace &T) {
  FastTrack Detector;
  replay(T, Detector);

  std::printf("--- %s ---\n", Title);
  std::printf("%zu events, %zu warning(s)\n", T.size(),
              Detector.warnings().size());
  for (const RaceWarning &W : Detector.warnings())
    std::printf("  %s\n", toString(W).c_str());
  const FastTrackRuleStats &Rules = Detector.ruleStats();
  std::printf("  rule firings: rd same-epoch %llu, exclusive %llu, shared "
              "%llu, share %llu | wr same-epoch %llu, exclusive %llu, "
              "shared %llu\n\n",
              (unsigned long long)Rules.ReadSameEpoch,
              (unsigned long long)Rules.ReadExclusive,
              (unsigned long long)Rules.ReadShared,
              (unsigned long long)Rules.ReadShare,
              (unsigned long long)Rules.WriteSameEpoch,
              (unsigned long long)Rules.WriteExclusive,
              (unsigned long long)Rules.WriteShared);
}

int main() {
  std::printf("FastTrack quickstart\n====================\n\n");

  // 1. The Section 2.2 example: two writes to x ordered by a lock.
  //    wr(0,x) rel(0,m) acq(1,m) wr(1,x) — race-free.
  check("lock hand-off (Section 2.2) — race-free",
        TraceBuilder()
            .fork(0, 1)
            .acq(0, 0)
            .wr(0, 0)
            .rel(0, 0)
            .acq(1, 0)
            .wr(1, 0)
            .rel(1, 0)
            .take());

  // 2. The same writes without the lock: a write-write race.
  check("unsynchronized writes — write-write race",
        TraceBuilder().fork(0, 1).wr(0, 0).wr(1, 0).take());

  // 3. Figure 4: the read state inflates to a vector clock when two
  //    threads read concurrently, then deflates back to an epoch at the
  //    next ordered write. No race; note the one 'share' and one
  //    'write shared' firing.
  check("Figure 4 adaptive representation — race-free",
        TraceBuilder()
            .wr(0, 0)
            .fork(0, 1)
            .rd(1, 0)
            .rd(0, 0)
            .join(0, 1)
            .wr(0, 0)
            .rd(0, 0)
            .take());

  std::printf("Done. See examples/eraser_vs_fasttrack for the precision "
              "comparison and examples/miniconc_racecheck for checking "
              "real programs.\n");
  return 0;
}
