//===----------------------------------------------------------------------===//
//
// Part of the FastTrack reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The happens-before relation <α of Section 2.1, computed exactly.
///
/// HappensBefore replays a trace maintaining full vector clocks for every
/// thread, lock, and volatile, and assigns each operation a vector
/// timestamp. Operation a happens before operation b (a earlier in the
/// trace) iff Ta(tid(a)) ≤ Tb(tid(a)). This is the reference ("gold")
/// model: slow and memory-hungry, but trivially correct, against which the
/// production detectors are validated.
///
//===----------------------------------------------------------------------===//

#ifndef FASTTRACK_HB_HAPPENSBEFORE_H
#define FASTTRACK_HB_HAPPENSBEFORE_H

#include "clock/VectorClock.h"
#include "trace/Trace.h"

#include <vector>

namespace ft {

/// Exact happens-before information for one trace.
///
/// Timestamps follow the convention of the paper's appendix (Lemma 4):
/// the timestamp of an acquire-like operation (acq, join, volatile read,
/// barrier) is the thread's clock *after* joining in the incoming edge;
/// all other operations are stamped with the thread's clock beforehand.
class HappensBefore {
public:
  /// Replays \p T and computes all timestamps. O(|T| · n) time and space.
  explicit HappensBefore(const Trace &T);

  /// Returns the vector timestamp of operation \p Index. For Barrier
  /// operations the timestamp is the joined pre-barrier clock shared by
  /// every released thread.
  const VectorClock &timestamp(size_t Index) const {
    assert(Index < Timestamps.size() && "operation index out of range");
    return Timestamps[Index];
  }

  /// Returns true iff operation \p Earlier happens before \p Later.
  /// Requires Earlier < Later (trace order). Program order, locking,
  /// fork/join, volatiles, and barriers are all included.
  bool happensBefore(size_t Earlier, size_t Later) const;

  /// Returns true iff the two operations are concurrent (neither happens
  /// before the other). Requires Earlier < Later.
  bool concurrent(size_t Earlier, size_t Later) const {
    return !happensBefore(Earlier, Later);
  }

  const Trace &trace() const { return T; }

private:
  const Trace &T;
  std::vector<VectorClock> Timestamps;
  /// Acting thread for each op (for barriers: representative member).
  std::vector<ThreadId> Actors;
};

} // namespace ft

#endif // FASTTRACK_HB_HAPPENSBEFORE_H
