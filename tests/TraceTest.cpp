//===--- TraceTest.cpp - unit tests for Trace/Operation/Builder/Stats -----===//

#include "trace/TraceBuilder.h"
#include "trace/TraceStats.h"

#include <gtest/gtest.h>

using namespace ft;

TEST(Operation, ToStringMirrorsPaperNotation) {
  EXPECT_EQ(toString(rd(1, 4)), "rd(1,x4)");
  EXPECT_EQ(toString(wr(0, 2)), "wr(0,x2)");
  EXPECT_EQ(toString(acq(1, 0)), "acq(1,m0)");
  EXPECT_EQ(toString(rel(1, 0)), "rel(1,m0)");
  EXPECT_EQ(toString(fork(0, 1)), "fork(0,t1)");
  EXPECT_EQ(toString(join(0, 1)), "join(0,t1)");
  EXPECT_EQ(toString(volRd(2, 3)), "vrd(2,v3)");
  EXPECT_EQ(toString(volWr(2, 3)), "vwr(2,v3)");
  EXPECT_EQ(toString(atomicBegin(1)), "abegin(1)");
}

TEST(Operation, Predicates) {
  EXPECT_TRUE(isAccess(OpKind::Read));
  EXPECT_TRUE(isAccess(OpKind::Write));
  EXPECT_FALSE(isAccess(OpKind::Acquire));
  EXPECT_TRUE(isLockOp(OpKind::Acquire));
  EXPECT_TRUE(isLockOp(OpKind::Release));
  EXPECT_TRUE(isThreadOp(OpKind::Fork));
  EXPECT_TRUE(isThreadOp(OpKind::Join));
  EXPECT_TRUE(isVolatileOp(OpKind::VolatileRead));
  EXPECT_FALSE(isVolatileOp(OpKind::Read));
}

TEST(Trace, TracksEntityCounts) {
  Trace T;
  T.append(fork(0, 2));
  T.append(wr(2, 5));
  T.append(acq(2, 3));
  T.append(volWr(2, 1));
  EXPECT_EQ(T.numThreads(), 3u);
  EXPECT_EQ(T.numVars(), 6u);
  EXPECT_EQ(T.numLocks(), 4u);
  EXPECT_EQ(T.numVolatiles(), 2u);
  EXPECT_EQ(T.size(), 4u);
}

TEST(Trace, EmptyTraceHasMainThread) {
  Trace T;
  EXPECT_EQ(T.numThreads(), 1u);
  EXPECT_TRUE(T.empty());
}

TEST(Trace, BarrierSetsAreDedupedAndSorted) {
  Trace T;
  Operation B1 = T.appendBarrier({2, 0, 1, 1});
  Operation B2 = T.appendBarrier({0, 1, 2});
  EXPECT_EQ(B1.Target, B2.Target);
  EXPECT_EQ(T.numBarrierSets(), 1u);
  std::vector<ThreadId> Expected = {0, 1, 2};
  EXPECT_EQ(T.barrierSet(B1.Target), Expected);
  EXPECT_EQ(B1.Thread, 0u); // lowest member
  EXPECT_EQ(T.numThreads(), 3u);
}

TEST(Trace, DistinctBarrierSetsGetDistinctIndices) {
  Trace T;
  Operation B1 = T.appendBarrier({0, 1});
  Operation B2 = T.appendBarrier({0, 2});
  EXPECT_NE(B1.Target, B2.Target);
  EXPECT_EQ(T.numBarrierSets(), 2u);
}

TEST(Trace, ClearResetsEverything) {
  Trace T;
  T.append(wr(1, 1));
  T.appendBarrier({0, 1});
  T.clear();
  EXPECT_TRUE(T.empty());
  EXPECT_EQ(T.numThreads(), 1u);
  EXPECT_EQ(T.numVars(), 0u);
  EXPECT_EQ(T.numBarrierSets(), 0u);
}

TEST(TraceBuilder, BuildsThePaperSection22Trace) {
  // wr(0,x) rel(0,m) acq(1,m) wr(1,x) — the worked example of Section 2.2.
  Trace T = TraceBuilder().wr(0, 0).rel(0, 0).acq(1, 0).wr(1, 0).take();
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[0], wr(0, 0));
  EXPECT_EQ(T[1], rel(0, 0));
  EXPECT_EQ(T[2], acq(1, 0));
  EXPECT_EQ(T[3], wr(1, 0));
}

TEST(TraceBuilder, LockedAccessHelpers) {
  Trace T = TraceBuilder().lockedWr(1, 7, 3).take();
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0], acq(1, 7));
  EXPECT_EQ(T[1], wr(1, 3));
  EXPECT_EQ(T[2], rel(1, 7));
}

TEST(TraceStats, CountsEveryKind) {
  TraceBuilder B;
  B.fork(0, 1).rd(0, 0).rd(1, 0).wr(0, 1).acq(1, 0).rel(1, 0);
  B.volRd(0, 0).volWr(0, 0).barrier({0, 1}).atomicBegin(0).atomicEnd(0);
  B.join(0, 1);
  Trace T = B.take();
  TraceStats Stats = computeStats(T);
  EXPECT_EQ(Stats.Reads, 2u);
  EXPECT_EQ(Stats.Writes, 1u);
  EXPECT_EQ(Stats.Acquires, 1u);
  EXPECT_EQ(Stats.Releases, 1u);
  EXPECT_EQ(Stats.Forks, 1u);
  EXPECT_EQ(Stats.Joins, 1u);
  EXPECT_EQ(Stats.VolatileReads, 1u);
  EXPECT_EQ(Stats.VolatileWrites, 1u);
  EXPECT_EQ(Stats.Barriers, 1u);
  EXPECT_EQ(Stats.AtomicMarkers, 2u);
  EXPECT_EQ(Stats.total(), T.size());
}

TEST(TraceStats, PercentagesSumSensibly) {
  TraceBuilder B;
  for (int I = 0; I != 823; ++I)
    B.rd(0, 0);
  for (int I = 0; I != 145; ++I)
    B.wr(0, 0);
  for (int I = 0; I != 16; ++I)
    B.acq(0, 0).rel(0, 0);
  Trace T = B.take();
  TraceStats Stats = computeStats(T);
  EXPECT_NEAR(Stats.readPercent(), 82.3, 0.1);
  EXPECT_NEAR(Stats.writePercent(), 14.5, 0.1);
  EXPECT_NEAR(Stats.syncPercent(), 3.2, 0.1);
  EXPECT_FALSE(Stats.summary().empty());
}
