//===--- VectorClockTest.cpp - vector clock algebra laws ------------------===//

#include "clock/VectorClock.h"

#include <gtest/gtest.h>

using namespace ft;

TEST(VectorClock, BottomIsAllZero) {
  VectorClock V;
  EXPECT_TRUE(V.isBottom());
  EXPECT_EQ(V.get(0), 0u);
  EXPECT_EQ(V.get(100), 0u);
}

TEST(VectorClock, SetAndGet) {
  VectorClock V;
  V.set(3, 7);
  EXPECT_EQ(V.get(3), 7u);
  EXPECT_EQ(V.get(0), 0u);
  EXPECT_EQ(V.get(4), 0u);
  EXPECT_FALSE(V.isBottom());
}

TEST(VectorClock, IncIncrementsOnlyOneEntry) {
  VectorClock V;
  V.inc(2);
  V.inc(2);
  V.inc(0);
  EXPECT_EQ(V.get(2), 2u);
  EXPECT_EQ(V.get(0), 1u);
  EXPECT_EQ(V.get(1), 0u);
}

TEST(VectorClock, JoinIsPointwiseMax) {
  VectorClock A, B;
  A.set(0, 4);
  A.set(1, 0);
  B.set(0, 2);
  B.set(1, 8);
  A.joinWith(B);
  EXPECT_EQ(A.get(0), 4u);
  EXPECT_EQ(A.get(1), 8u);
}

TEST(VectorClock, JoinGrowsToLargerClock) {
  VectorClock A, B;
  B.set(5, 9);
  A.joinWith(B);
  EXPECT_EQ(A.get(5), 9u);
}

TEST(VectorClock, LeqIsPointwise) {
  VectorClock A, B;
  A.set(0, 4);
  B.set(0, 4);
  B.set(1, 8);
  EXPECT_TRUE(A.leq(B));
  EXPECT_FALSE(B.leq(A));
}

TEST(VectorClock, LeqHandlesImplicitZeros) {
  VectorClock A, B;
  A.set(3, 1);
  EXPECT_TRUE(VectorClock().leq(A));
  EXPECT_FALSE(A.leq(VectorClock()));
}

TEST(VectorClock, LeqLawsOnSamples) {
  // Reflexivity, antisymmetry-ish (via ==), transitivity on a few samples.
  VectorClock A, B, C;
  A.set(0, 1);
  B.set(0, 1);
  B.set(1, 2);
  C.set(0, 3);
  C.set(1, 2);
  EXPECT_TRUE(A.leq(A));
  EXPECT_TRUE(A.leq(B));
  EXPECT_TRUE(B.leq(C));
  EXPECT_TRUE(A.leq(C));
}

TEST(VectorClock, JoinIsLeastUpperBoundOnSamples) {
  VectorClock A, B;
  A.set(0, 4);
  B.set(1, 8);
  VectorClock J = A;
  J.joinWith(B);
  EXPECT_TRUE(A.leq(J));
  EXPECT_TRUE(B.leq(J));
  // Any other upper bound dominates the join.
  VectorClock U;
  U.set(0, 9);
  U.set(1, 9);
  EXPECT_TRUE(J.leq(U));
}

TEST(VectorClock, EqualityIgnoresTrailingZeros) {
  VectorClock A, B;
  A.set(0, 1);
  B.set(0, 1);
  B.set(5, 0);
  EXPECT_TRUE(A == B);
}

TEST(VectorClock, EpochLeqMatchesPaperDefinition) {
  // c@t ≼ V iff c ≤ V(t). The Section 3 example: 4@0 ≼ <4,8,...> holds.
  VectorClock C1;
  C1.set(0, 4);
  C1.set(1, 8);
  EXPECT_TRUE(C1.epochLeq(Epoch::make(0, 4)));
  EXPECT_TRUE(C1.epochLeq(Epoch::make(1, 8)));
  EXPECT_FALSE(C1.epochLeq(Epoch::make(0, 5)));
  EXPECT_TRUE(C1.epochLeq(Epoch())); // ⊥e ≼ anything
}

TEST(VectorClock, EpochOfExtractsCurrentEpoch) {
  VectorClock C;
  C.set(2, 9);
  EXPECT_EQ(C.epochOf(2), Epoch::make(2, 9));
  EXPECT_EQ(C.epochOf(0), Epoch::make(0, 0));
}

TEST(VectorClock, StrRendersEntries) {
  VectorClock C;
  C.set(0, 4);
  C.set(1, 8);
  EXPECT_EQ(C.str(), "<4,8>");
  EXPECT_EQ(C.str(3), "<4,8,0>");
}

TEST(VectorClockStats, CountsAllocationsAndOps) {
  resetClockStats();
  {
    VectorClock A(4);
    VectorClock B(4);
    A.joinWith(B);
    (void)A.leq(B);
    VectorClock C = A; // copy: allocation + copy op
    (void)C;
  }
  ClockStats S = clockStats();
  EXPECT_EQ(S.Allocations, 3u);
  EXPECT_EQ(S.JoinOps, 1u);
  EXPECT_EQ(S.CompareOps, 1u);
  EXPECT_EQ(S.CopyOps, 1u);
  EXPECT_EQ(S.totalOps(), 3u);
}

TEST(VectorClockStats, EpochLeqIsNotCounted) {
  resetClockStats();
  VectorClock C(8);
  for (int I = 0; I != 100; ++I)
    (void)C.epochLeq(Epoch::make(0, 1));
  EXPECT_EQ(clockStats().totalOps(), 0u);
}

TEST(VectorClockStats, DeltaSubtraction) {
  resetClockStats();
  VectorClock A(2), B(2);
  ClockStats Before = clockStats();
  A.joinWith(B);
  ClockStats Delta = clockStats() - Before;
  EXPECT_EQ(Delta.JoinOps, 1u);
  EXPECT_EQ(Delta.Allocations, 0u);
}

TEST(VectorClock, MemoryBytesReflectsCapacity) {
  VectorClock V(16);
  EXPECT_GE(V.memoryBytes(), 16 * sizeof(ClockValue));
  EXPECT_EQ(VectorClock().memoryBytes(), 0u);
}

TEST(VectorClock, MoveDoesNotCountAllocation) {
  resetClockStats();
  VectorClock A(4);
  uint64_t After = clockStats().Allocations;
  VectorClock B = std::move(A);
  (void)B;
  EXPECT_EQ(clockStats().Allocations, After);
}
