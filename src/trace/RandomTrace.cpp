#include "trace/RandomTrace.h"

#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace ft;

namespace {

/// Variable classes realizing the paper's observation that data is mostly
/// thread-local, lock-protected, or read-shared (Section 1).
enum class VarClass { ThreadLocal, ReadShared, LockProtected };

class Generator {
public:
  explicit Generator(const RandomTraceConfig &Config)
      : Config(Config), Rng(Config.Seed) {}

  Trace run();

private:
  struct Worker {
    ThreadId Tid;
    unsigned OpsLeft;
    std::vector<LockId> LockStack;
    unsigned AtomicOpsLeft = 0;
    bool InAtomic = false;
    bool Done = false;
  };

  VarClass classOf(VarId X) const {
    unsigned TL = Config.NumThreads; // one thread-local var per worker
    unsigned RS = std::max(1u, Config.NumVars / 4);
    if (X < TL && TL + RS < Config.NumVars)
      return VarClass::ThreadLocal;
    if (X < TL + RS && TL + RS < Config.NumVars)
      return VarClass::ReadShared;
    return VarClass::LockProtected;
  }

  LockId lockOf(VarId X) const { return X % std::max(1u, Config.NumLocks); }

  VarId pickVar(VarClass Class, ThreadId Tid);
  void step(Worker &W);
  void finish(Worker &W);

  const RandomTraceConfig &Config;
  Xoshiro256StarStar Rng;
  Trace T;
  std::vector<Worker> Workers;
};

VarId Generator::pickVar(VarClass Class, ThreadId Tid) {
  unsigned TL = Config.NumThreads;
  unsigned RS = std::max(1u, Config.NumVars / 4);
  if (TL + RS >= Config.NumVars) {
    // Degenerate config: everything is lock-protected.
    return static_cast<VarId>(Rng.nextBelow(std::max(1u, Config.NumVars)));
  }
  switch (Class) {
  case VarClass::ThreadLocal:
    return (Tid - 1) % TL; // workers have tids 1..NumThreads
  case VarClass::ReadShared:
    return TL + static_cast<VarId>(Rng.nextBelow(RS));
  case VarClass::LockProtected:
    return TL + RS +
           static_cast<VarId>(Rng.nextBelow(Config.NumVars - TL - RS));
  }
  return 0;
}

void Generator::step(Worker &W) {
  assert(!W.Done && "stepping a finished worker");
  --W.OpsLeft;

  // Close or continue an open atomic block first.
  if (W.InAtomic && W.AtomicOpsLeft == 0) {
    T.append(atomicEnd(W.Tid));
    W.InAtomic = false;
    return;
  }
  if (W.InAtomic)
    --W.AtomicOpsLeft;

  if (Config.EmitAtomicBlocks && !W.InAtomic && Rng.nextBool(0.05)) {
    T.append(atomicBegin(W.Tid));
    W.InAtomic = true;
    W.AtomicOpsLeft = 1 + static_cast<unsigned>(Rng.nextBelow(4));
    return;
  }

  if (Config.NumVolatiles > 0 && Rng.nextBool(Config.VolatileProbability)) {
    VolatileId V = static_cast<VolatileId>(Rng.nextBelow(Config.NumVolatiles));
    if (Rng.nextBool(0.5))
      T.append(volRd(W.Tid, V));
    else
      T.append(volWr(W.Tid, V));
    return;
  }

  bool Chaotic = Rng.nextBool(Config.ChaosProbability);
  double ClassDraw = Rng.nextDouble();
  unsigned Burst =
      1 + static_cast<unsigned>(Rng.nextBelow(
              std::max(1u, Config.MaxAccessBurst)));
  if (!Chaotic && ClassDraw < Config.ThreadLocalShare) {
    // Thread-local access (bursty: repeated field reads/writes).
    VarId X = pickVar(VarClass::ThreadLocal, W.Tid);
    for (unsigned I = 0; I != Burst; ++I) {
      if (Rng.nextBool(0.8))
        T.append(rd(W.Tid, X));
      else
        T.append(wr(W.Tid, X));
    }
    return;
  }
  if (!Chaotic && ClassDraw < Config.ThreadLocalShare + Config.ReadSharedShare) {
    // Read-shared data: read-only after the main thread's initialization.
    VarId X = pickVar(VarClass::ReadShared, W.Tid);
    for (unsigned I = 0; I != Burst; ++I)
      T.append(rd(W.Tid, X));
    return;
  }

  VarId X = Chaotic
                ? static_cast<VarId>(Rng.nextBelow(std::max(1u, Config.NumVars)))
                : pickVar(VarClass::LockProtected, W.Tid);
  bool IsWrite = Rng.nextBool(0.3);
  if (Chaotic) {
    // Undisciplined access: no lock — the source of races.
    T.append(IsWrite ? wr(W.Tid, X) : rd(W.Tid, X));
    return;
  }
  LockId M = lockOf(X);
  T.append(acq(W.Tid, M));
  T.append(IsWrite ? wr(W.Tid, X) : rd(W.Tid, X));
  if (Rng.nextBool(0.5))
    T.append(IsWrite ? rd(W.Tid, X) : wr(W.Tid, X)); // longer critical section
  T.append(rel(W.Tid, M));
}

void Generator::finish(Worker &W) {
  if (W.InAtomic) {
    T.append(atomicEnd(W.Tid));
    W.InAtomic = false;
  }
  while (!W.LockStack.empty()) {
    T.append(rel(W.Tid, W.LockStack.back()));
    W.LockStack.pop_back();
  }
  W.Done = true;
}

Trace Generator::run() {
  unsigned TL = Config.NumThreads;
  unsigned RS = std::max(1u, Config.NumVars / 4);

  // The main thread initializes the read-shared region, then forks.
  if (TL + RS < Config.NumVars)
    for (VarId X = TL; X != TL + RS; ++X)
      T.append(wr(0, X));

  Workers.clear();
  for (ThreadId U = 1; U <= Config.NumThreads; ++U) {
    T.append(fork(0, U));
    Workers.push_back({U, std::max(1u, Config.OpsPerThread), {}, 0, false,
                       false});
  }

  // Interleave worker steps at random until all budgets are exhausted.
  while (true) {
    std::vector<unsigned> Runnable;
    for (unsigned I = 0; I != Workers.size(); ++I)
      if (!Workers[I].Done)
        Runnable.push_back(I);
    if (Runnable.empty())
      break;

    if (Config.BarrierProbability > 0 &&
        Rng.nextBool(Config.BarrierProbability)) {
      std::vector<ThreadId> Set = {0};
      for (unsigned I : Runnable)
        Set.push_back(Workers[I].Tid);
      if (Set.size() > 1)
        T.appendBarrier(Set);
    }

    unsigned Pick = Runnable[Rng.nextBelow(Runnable.size())];
    Worker &W = Workers[Pick];
    step(W);
    if (W.OpsLeft == 0)
      finish(W);
  }

  for (Worker &W : Workers)
    T.append(join(0, W.Tid));

  // Post-join accesses by main: race-free because of the join edges.
  for (VarId X = 0; X != std::min(Config.NumVars, TL + RS); ++X)
    T.append(rd(0, X));

  return std::move(T);
}

} // namespace

Trace ft::generateRandomTrace(const RandomTraceConfig &Config) {
  Generator Gen(Config);
  return Gen.run();
}
