#include "trace/TraceStats.h"

#include "support/Format.h"
#include "trace/ReentrancyFilter.h"

using namespace ft;

static double percentOf(uint64_t Part, uint64_t Whole) {
  return Whole == 0 ? 0.0 : 100.0 * static_cast<double>(Part) /
                                static_cast<double>(Whole);
}

double TraceStats::readPercent() const { return percentOf(Reads, total()); }
double TraceStats::writePercent() const { return percentOf(Writes, total()); }
double TraceStats::syncPercent() const { return percentOf(syncOps(), total()); }

std::string TraceStats::summary() const {
  std::string Out;
  auto addLine = [&](const char *Name, uint64_t Count) {
    Out += padRight(Name, 16) + padLeft(withCommas(Count), 14) +
           padLeft(fixed(percentOf(Count, total()), 1), 8) + "%\n";
  };
  addLine("reads", Reads);
  addLine("writes", Writes);
  addLine("acquires", Acquires);
  addLine("releases", Releases);
  addLine("forks", Forks);
  addLine("joins", Joins);
  addLine("volatile reads", VolatileReads);
  addLine("volatile writes", VolatileWrites);
  addLine("barriers", Barriers);
  addLine("atomic markers", AtomicMarkers);
  Out += padRight("total", 16) + padLeft(withCommas(total()), 14) + "\n";
  return Out;
}

uint64_t ft::countReentrantLockOps(const Trace &T) {
  ReentrancyFilter Filter(T.numThreads(), T.numLocks());
  uint64_t Stripped = 0;
  for (const Operation &Op : T) {
    if (Op.Kind == OpKind::Acquire && !Filter.onAcquire(Op.Thread, Op.Target))
      ++Stripped;
    else if (Op.Kind == OpKind::Release &&
             !Filter.onRelease(Op.Thread, Op.Target))
      ++Stripped;
  }
  return Stripped;
}

std::vector<uint64_t> ft::countOpsPerThread(const Trace &T) {
  std::vector<uint64_t> Counts(T.numThreads(), 0);
  for (const Operation &Op : T)
    ++Counts[Op.Thread];
  return Counts;
}

TraceStats ft::computeStats(const Trace &T) {
  TraceStats Stats;
  for (const Operation &Op : T) {
    switch (Op.Kind) {
    case OpKind::Read:
      ++Stats.Reads;
      break;
    case OpKind::Write:
      ++Stats.Writes;
      break;
    case OpKind::Acquire:
      ++Stats.Acquires;
      break;
    case OpKind::Release:
      ++Stats.Releases;
      break;
    case OpKind::Fork:
      ++Stats.Forks;
      break;
    case OpKind::Join:
      ++Stats.Joins;
      break;
    case OpKind::VolatileRead:
      ++Stats.VolatileReads;
      break;
    case OpKind::VolatileWrite:
      ++Stats.VolatileWrites;
      break;
    case OpKind::Barrier:
      ++Stats.Barriers;
      break;
    case OpKind::AtomicBegin:
    case OpKind::AtomicEnd:
      ++Stats.AtomicMarkers;
      break;
    }
  }
  return Stats;
}
