//===----------------------------------------------------------------------===//
//
// racecheck: a small command-line front end over the trace text format —
// analyze recorded executions from any source with any of the detectors.
//
// Usage:
//   trace_file_tool                     # self-demo on a generated file
//   trace_file_tool FILE.trc [tool...]  # e.g. trace_file_tool t.trc
//                                       #      fasttrack eraser djit+
//   trace_file_tool --shards N FILE.trc [tool...]
//                                       # sharded parallel replay across
//                                       # N workers (0 = all cores)
//   trace_file_tool --salvage FILE.trc  # skip malformed records instead
//                                       # of aborting on the first error
//   trace_file_tool --stats FILE.trc    # operation mix + instrumentation
//                                       # counters only; no detector runs
//   trace_file_tool --checkpoint-every N [--checkpoint-file P] FILE.trc
//                                       # checkpoint the analysis every N
//                                       # ops; a rerun resumes from the
//                                       # last checkpoint (default P:
//                                       # FILE.trc.ckpt)
//   trace_file_tool --mem-budget BYTES FILE.trc
//                                       # shadow-memory budget; breaching
//                                       # it degrades granularity instead
//                                       # of dying (suffix K/M/G ok)
//
//===----------------------------------------------------------------------===//

#include "core/ToolRegistry.h"
#include "framework/Checkpoint.h"
#include "framework/ParallelReplay.h"
#include "framework/ResourceGovernor.h"
#include "support/Format.h"
#include "support/MemoryTracker.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"
#include "trace/TraceStats.h"
#include "trace/TraceValidator.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace ft;

namespace {

/// -1: serial replay(). Otherwise the NumShards passed to parallelReplay
/// (0 = one shard per hardware thread).
int ShardsFlag = -1;
bool SalvageFlag = false;
bool StatsFlag = false;
uint64_t CheckpointEvery = 0;   // 0 = checkpointing off
std::string CheckpointFile;     // empty = derive from the trace path
uint64_t MemBudget = 0;         // 0 = unlimited

const char *modeName(const ParallelReplayResult &Result) {
  if (!Result.Sharded)
    return "serial";
  return Result.Mode == ShardMode::SpineDriven ? "spine-driven"
                                               : "sync-replay";
}

void printDiags(const std::vector<Diagnostic> &Diags) {
  for (const Diagnostic &D : Diags)
    std::fprintf(stderr, "%s\n", toString(D).c_str());
}

int analyze(const std::string &Path, const std::vector<std::string> &Tools) {
  Trace T;
  ParseOptions ParseOpts;
  ParseOpts.Salvage = SalvageFlag;
  ParseReport Report = loadTraceFile(Path, T, ParseOpts);
  printDiags(Report.Diags);
  if (!Report.ok()) {
    // Only print the flat status when no diagnostic already said it
    // (e.g. file-open failures produce a Status but no diag list).
    bool Rendered = false;
    for (const Diagnostic &D : Report.Diags)
      Rendered |= D.Sev == Severity::Error || D.Sev == Severity::Fatal;
    if (!Rendered)
      std::fprintf(stderr, "error: %s\n", Report.St.toString().c_str());
    return 1;
  }

  auto Violations = validateTrace(T);
  std::printf("%s: %zu events, %u threads, %u variables, %u locks\n",
              Path.c_str(), T.size(), T.numThreads(), T.numVars(),
              T.numLocks());
  if (!Violations.empty()) {
    std::printf("warning: trace is not feasible (%zu violations); first: "
                "op %zu: %s\n",
                Violations.size(), Violations[0].OpIndex,
                Violations[0].Message.c_str());
  }
  std::printf("%s", computeStats(T).summary().c_str());

  if (StatsFlag) {
    // Instrumentation accounting, no detector: what would actually reach
    // a tool after the re-entrancy filter, and who produced the events.
    uint64_t Stripped = countReentrantLockOps(T);
    std::printf("\nre-entrant lock ops  %s (filtered before dispatch)\n"
                "dispatched ops       %s\n",
                withCommas(Stripped).c_str(),
                withCommas(T.size() - Stripped).c_str());
    std::vector<uint64_t> PerThread = countOpsPerThread(T);
    std::printf("events per thread   ");
    for (size_t I = 0; I != PerThread.size(); ++I)
      std::printf(" t%zu:%s", I, withCommas(PerThread[I]).c_str());
    std::printf("\n");
    return 0;
  }

  for (const std::string &Name : Tools) {
    auto Detector = createTool(Name);
    if (!Detector) {
      std::fprintf(stderr, "error: unknown tool '%s' (known:", Name.c_str());
      for (const std::string &Known : registeredToolNames())
        std::fprintf(stderr, " %s", Known.c_str());
      std::fprintf(stderr, ")\n");
      return 1;
    }
    if (CheckpointEvery != 0) {
      if (ShardsFlag >= 0)
        std::fprintf(stderr, "warning: --shards is ignored under "
                             "--checkpoint-every (checkpointed replay is "
                             "serial)\n");
      CheckpointOptions Ck;
      Ck.Path = CheckpointFile.empty() ? Path + ".ckpt" : CheckpointFile;
      Ck.EveryOps = CheckpointEvery;
      CheckpointedReplayResult Result = replayCheckpointed(T, *Detector, {}, Ck);
      printDiags(Result.Diags);
      std::printf("\n[%s] %zu warning(s) in %.3fs (", Detector->name(),
                  Detector->warnings().size(), Result.Result.Seconds);
      if (Result.Resumed)
        std::printf("resumed at op %llu, ",
                    static_cast<unsigned long long>(Result.ResumedAtOp));
      std::printf("%llu checkpoint(s) written)\n",
                  static_cast<unsigned long long>(Result.CheckpointsWritten));
    } else if (MemBudget != 0) {
      MemoryTracker Tracker;
      GovernorOptions Gov;
      Gov.ShadowBudgetBytes = MemBudget;
      Gov.Tracker = &Tracker;
      GovernedReplayResult Result = replayGoverned(T, *Detector, {}, Gov);
      printDiags(Result.Diags);
      std::printf("\n[%s] %zu warning(s) in %.3fs (", Detector->name(),
                  Detector->warnings().size(), Result.Result.Seconds);
      if (Result.FinalGran == Granularity::Fine)
        std::printf("fine granularity");
      else
        std::printf("degraded %u time(s) to coarse, %u fields/object",
                    Result.Degradations, Result.FinalFieldsPerObject);
      std::printf(", peak shadow %llu bytes)\n",
                  static_cast<unsigned long long>(Tracker.peakBytes()));
    } else if (ShardsFlag < 0) {
      ReplayResult Result = replay(T, *Detector);
      std::printf("\n[%s] %zu warning(s) in %.3fs\n", Detector->name(),
                  Detector->warnings().size(), Result.Seconds);
    } else {
      ParallelReplayOptions Options;
      Options.NumShards = static_cast<unsigned>(ShardsFlag);
      Options.WatchdogTimeoutMs = 10000;
      ParallelReplayResult Result = parallelReplay(T, *Detector, Options);
      printDiags(Result.Diags);
      std::printf("\n[%s] %zu warning(s) in %.3fs (%s", Detector->name(),
                  Detector->warnings().size(), Result.Total.Seconds,
                  modeName(Result));
      if (Result.Sharded)
        std::printf(", %u shards, pre-pass %.3fs", Result.Shards,
                    Result.PrePassSeconds);
      std::printf(")\n");
    }
    for (const RaceWarning &W : Detector->warnings())
      std::printf("  %s\n", toString(W).c_str());
  }
  return 0;
}

/// Parses "1048576", "64K", "16M", "2G" (case-insensitive suffixes).
bool parseBytes(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text)
    return false;
  uint64_t Mult = 1;
  if (*End == 'k' || *End == 'K')
    Mult = 1ull << 10, ++End;
  else if (*End == 'm' || *End == 'M')
    Mult = 1ull << 20, ++End;
  else if (*End == 'g' || *End == 'G')
    Mult = 1ull << 30, ++End;
  if (*End != '\0')
    return false;
  Out = V * Mult;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--shards") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --shards needs a count (0 = all "
                             "cores)\n");
        return 1;
      }
      ShardsFlag = std::atoi(Argv[++I]);
      if (ShardsFlag < 0) {
        std::fprintf(stderr, "error: invalid shard count '%s'\n", Argv[I]);
        return 1;
      }
      continue;
    }
    if (Arg == "--salvage") {
      SalvageFlag = true;
      continue;
    }
    if (Arg == "--stats") {
      StatsFlag = true;
      continue;
    }
    if (Arg == "--checkpoint-every") {
      if (I + 1 >= Argc || !parseBytes(Argv[I + 1], CheckpointEvery) ||
          CheckpointEvery == 0) {
        std::fprintf(stderr,
                     "error: --checkpoint-every needs an op count > 0\n");
        return 1;
      }
      ++I;
      continue;
    }
    if (Arg == "--checkpoint-file") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --checkpoint-file needs a path\n");
        return 1;
      }
      CheckpointFile = Argv[++I];
      continue;
    }
    if (Arg == "--mem-budget") {
      if (I + 1 >= Argc || !parseBytes(Argv[I + 1], MemBudget) ||
          MemBudget == 0) {
        std::fprintf(stderr, "error: --mem-budget needs a byte count > 0 "
                             "(suffix K/M/G ok)\n");
        return 1;
      }
      ++I;
      continue;
    }
    Args.push_back(std::move(Arg));
  }

  if (!Args.empty()) {
    std::vector<std::string> Tools(Args.begin() + 1, Args.end());
    if (Tools.empty())
      Tools.push_back("fasttrack");
    return analyze(Args[0], Tools);
  }

  // Self-demo: write a small racy trace to a file, then analyze it.
  std::printf("trace_file_tool self-demo (pass FILE.trc [tools...] to "
              "analyze your own traces;\n--shards N runs the parallel "
              "sharded engine, see docs/ARCHITECTURE.md)\n\n");
  Trace T = TraceBuilder()
                .fork(0, 1)
                .lockedWr(0, 0, 0)
                .lockedWr(1, 0, 0)
                .wr(0, 1)
                .rd(1, 1) // race on x1
                .join(0, 1)
                .take();
  std::string Path = "demo_trace.trc";
  if (Status St = saveTraceFile(Path, T); !St.ok()) {
    std::fprintf(stderr, "error: %s\n", St.toString().c_str());
    return 1;
  }
  std::printf("wrote %s:\n%s\n", Path.c_str(), serializeTrace(T).c_str());
  return analyze(Path, {"fasttrack", "djit+", "eraser"});
}
