#include "framework/ParallelReplay.h"

#include "framework/SyncSpine.h"
#include "framework/VectorClockToolBase.h"
#include "support/Stopwatch.h"
#include "trace/ReentrancyFilter.h"
#include "trace/ShardPartition.h"

#include <algorithm>
#include <thread>

using namespace ft;

namespace {

/// What one worker hands back to the engine. Workers touch only their
/// own slot, so no synchronization beyond thread join is needed (and the
/// whole engine is clean under -fsanitize=thread).
struct WorkerReport {
  double Seconds = 0;
  uint64_t AccessesSeen = 0;
  uint64_t AccessesPassed = 0;
  ClockStats Clocks; ///< The worker thread's counter delta.
};

/// Workers scan the whole (immutable, shared) trace and filter their own
/// accesses with this pure membership test — the access schedules are
/// never materialized, so the filtering is parallel work, not a serial
/// pre-pass. Granularity-mapped ids keep whole objects in one shard.
inline bool ownsAccess(VarId Mapped, unsigned Shard, unsigned NumShards) {
  return Mapped % NumShards == Shard;
}

void runSpineWorker(const Trace &T, const SyncSpine &Spine,
                    const GranularityMap &Map, const ToolContext &Context,
                    Tool &Clone, unsigned Shard, unsigned NumShards,
                    WorkerReport &Report) {
  ClockStats Before = clockStats();
  Stopwatch Watch;
  Clone.begin(Context);

  // The access rules read only the accessing thread's clock, so spine
  // updates are installed lazily: at an access by thread t, fast-forward
  // t's cursor past every update that precedes the access and install
  // just the latest one (a pointer store — the spine is immutable).
  // Skipped intermediate updates cost a pointer bump, and threads that
  // never touch this shard cost nothing.
  auto &VC = static_cast<VectorClockToolBase &>(Clone);
  std::vector<size_t> Cursor(Spine.PerThread.size(), 0);
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.size()); I != E; ++I) {
    const Operation &Op = T[I];
    if (Op.Kind != OpKind::Read && Op.Kind != OpKind::Write)
      continue;
    VarId X = Map.map(Op.Target);
    if (!ownsAccess(X, Shard, NumShards))
      continue;

    const std::vector<SpineUpdate> &Ups = Spine.PerThread[Op.Thread];
    size_t &Cur = Cursor[Op.Thread];
    size_t Next = Cur;
    while (Next != Ups.size() && Ups[Next].OpIndex < I)
      ++Next;
    if (Next != Cur) {
      VC.applySpineClock(Op.Thread, Ups[Next - 1].Clock);
      Cur = Next;
    }

    ++Report.AccessesSeen;
    Report.AccessesPassed += Op.Kind == OpKind::Read
                                 ? Clone.onRead(Op.Thread, X, I)
                                 : Clone.onWrite(Op.Thread, X, I);
  }

  Clone.end();
  Report.Seconds = Watch.seconds();
  Report.Clocks = clockStats() - Before;
}

void runSyncReplayWorker(const Trace &T, const GranularityMap &Map,
                         const ToolContext &Context, Tool &Clone,
                         unsigned Shard, unsigned NumShards,
                         bool FilterReentrantLocks, WorkerReport &Report) {
  ClockStats Before = clockStats();
  Stopwatch Watch;
  Clone.begin(Context);

  // Every worker replays the full sync schedule through its own clone,
  // each running the same re-entrancy filter the serial engine runs, so
  // all clones see the identical dispatched lock events.
  ReentrancyFilter Reentrancy(T.numThreads(), T.numLocks());
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.size()); I != E; ++I) {
    const Operation &Op = T[I];
    switch (Op.Kind) {
    case OpKind::Read:
    case OpKind::Write: {
      VarId X = Map.map(Op.Target);
      if (!ownsAccess(X, Shard, NumShards))
        continue;
      ++Report.AccessesSeen;
      Report.AccessesPassed += Op.Kind == OpKind::Read
                                   ? Clone.onRead(Op.Thread, X, I)
                                   : Clone.onWrite(Op.Thread, X, I);
      continue;
    }
    case OpKind::Acquire:
      if (FilterReentrantLocks && !Reentrancy.onAcquire(Op.Thread, Op.Target))
        continue;
      break;
    case OpKind::Release:
      if (FilterReentrantLocks && !Reentrancy.onRelease(Op.Thread, Op.Target))
        continue;
      break;
    default:
      break;
    }
    dispatchSyncOp(Clone, T, Op, I);
  }

  Clone.end();
  Report.Seconds = Watch.seconds();
  Report.Clocks = clockStats() - Before;
}

} // namespace

ParallelReplayResult ft::parallelReplay(const Trace &T, Tool &Primary,
                                        const ParallelReplayOptions &Options) {
  ParallelReplayResult Result;

  unsigned Shards = Options.NumShards;
  if (Shards == 0)
    Shards = std::max(1u, std::thread::hardware_concurrency());

  auto *Shardable = dynamic_cast<ShardableTool *>(&Primary);
  if (!Shardable || Shards <= 1 || T.empty()) {
    Result.Total = replay(T, Primary, Options.Replay);
    return Result;
  }

  Stopwatch TotalWatch;
  ClockStats Before = clockStats();
  GranularityMap Map = GranularityMap::make(Options.Replay);
  ToolContext Context = makeToolContext(T, Map);

  std::vector<std::unique_ptr<Tool>> Clones;
  Clones.reserve(Shards);
  for (unsigned K = 0; K != Shards; ++K)
    Clones.push_back(Shardable->cloneForShard());

  // SpineDriven requires the clone to expose applySpineClock; degrade to
  // SyncReplay otherwise (a misdeclared tool stays correct, just slower).
  ShardMode Mode = Shardable->shardMode();
  if (Mode == ShardMode::SpineDriven &&
      !dynamic_cast<VectorClockToolBase *>(Clones.front().get()))
    Mode = ShardMode::SyncReplay;

  // --- 1. Serial pre-pass: the dispatched sync schedule, and the spine
  // for vector-clock tools. This is the Amdahl bound on speedup; all
  // per-access work happens in the workers.
  Stopwatch PrePassWatch;
  std::vector<uint32_t> SyncOps;
  SyncSpine Spine;
  if (Mode == ShardMode::SpineDriven) {
    SpinePrePass Pre = buildSyncSpine(T, Options.Replay.FilterReentrantLocks);
    SyncOps = std::move(Pre.SyncOps);
    Spine = std::move(Pre.Spine);
  } else {
    SyncOps = collectSyncOps(T, Options.Replay.FilterReentrantLocks);
  }
  Result.PrePassSeconds = PrePassWatch.seconds();
  Result.PlanBytes = SyncOps.capacity() * sizeof(uint32_t);
  Result.SpineBytes = Spine.memoryBytes();
  Result.SpineUpdates = Spine.numUpdates();

  // --- 2. Sharded replay. ----------------------------------------------
  bool Filter = Options.Replay.FilterReentrantLocks;
  std::vector<WorkerReport> Reports(Shards);
  std::vector<std::thread> Workers;
  Workers.reserve(Shards);
  for (unsigned K = 0; K != Shards; ++K) {
    Tool &Clone = *Clones[K];
    WorkerReport &Report = Reports[K];
    if (Mode == ShardMode::SpineDriven)
      Workers.emplace_back([&, K] {
        runSpineWorker(T, Spine, Map, Context, Clone, K, Shards, Report);
      });
    else
      Workers.emplace_back([&, K] {
        runSyncReplayWorker(T, Map, Context, Clone, K, Shards, Filter,
                            Report);
      });
  }
  for (std::thread &Worker : Workers)
    Worker.join();

  // --- 3. Deterministic merge. -----------------------------------------
  uint64_t Accesses = 0;
  std::vector<RaceWarning> Merged;
  for (unsigned K = 0; K != Shards; ++K) {
    const std::vector<RaceWarning> &Ws = Clones[K]->warnings();
    Merged.insert(Merged.end(), Ws.begin(), Ws.end());
    Accesses += Reports[K].AccessesSeen;
    Result.Total.AccessesPassed += Reports[K].AccessesPassed;
    Result.Total.ShadowBytes += Clones[K]->shadowBytes();
    Result.ShardSeconds.push_back(Reports[K].Seconds);
    clockStats() += Reports[K].Clocks;
  }
  // Each access reports at most one warning and every access lives in
  // exactly one shard, so op indices are unique: sorting by OpIndex
  // reconstructs the serial engine's warning order exactly.
  std::sort(Merged.begin(), Merged.end(),
            [](const RaceWarning &A, const RaceWarning &B) {
              return A.OpIndex < B.OpIndex;
            });
  Primary.adoptWarnings(Merged);
  for (unsigned K = 0; K != Shards; ++K)
    Shardable->mergeShard(*Clones[K]);

  Result.Sharded = true;
  Result.Mode = Mode;
  Result.Shards = Shards;
  Result.Total.Events = SyncOps.size() + Accesses;
  Result.Total.NumWarnings = Primary.warnings().size();
  Result.Total.Clocks = clockStats() - Before;
  Result.Total.Seconds = TotalWatch.seconds();
  return Result;
}
